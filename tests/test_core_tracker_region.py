"""Unit and property tests for readiness tracking and PROACT regions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    ContiguousMapping,
    ProactRegion,
    ReadinessTracker,
    StridedMapping,
    tracking_overhead,
)
from repro.errors import ProactError
from repro.hw import KEPLER_K40M, PASCAL_P100, PLATFORM_4X_VOLTA, VOLTA_V100
from repro.runtime import KernelSpec, System
from repro.units import KiB, MiB


# ---------------------------------------------------------------------------
# ReadinessTracker (the functional atomic-counter protocol)
# ---------------------------------------------------------------------------

def test_tracker_counters_initialized_to_writer_counts():
    system = System(PLATFORM_4X_VOLTA)
    mapping = ContiguousMapping(num_ctas=8, num_chunks=2)
    tracker = ReadinessTracker(system.engine, mapping)
    assert tracker.counters == [4, 4]


def test_tracker_chunk_fires_only_after_last_writer():
    system = System(PLATFORM_4X_VOLTA)
    mapping = ContiguousMapping(num_ctas=4, num_chunks=2)
    tracker = ReadinessTracker(system.engine, mapping)
    assert tracker.cta_complete(0) == []
    assert not tracker.is_ready(0)
    assert tracker.cta_complete(1) == [0]
    assert tracker.is_ready(0)
    assert not tracker.is_ready(1)
    assert tracker.cta_complete(2) == []
    assert tracker.cta_complete(3) == [1]
    assert tracker.all_ready


def test_tracker_double_completion_rejected():
    system = System(PLATFORM_4X_VOLTA)
    tracker = ReadinessTracker(
        system.engine, ContiguousMapping(num_ctas=2, num_chunks=1))
    tracker.cta_complete(0)
    with pytest.raises(ProactError):
        tracker.cta_complete(0)


def test_tracker_ready_events_waitable():
    system = System(PLATFORM_4X_VOLTA)
    mapping = ContiguousMapping(num_ctas=2, num_chunks=2)
    tracker = ReadinessTracker(system.engine, mapping)
    log = []

    def transfer_agent(engine, tracker):
        chunk = yield tracker.chunk_ready[1]
        log.append((chunk, engine.now))

    def producer(engine, tracker):
        yield engine.timeout(1.0)
        tracker.cta_complete(0)
        yield engine.timeout(1.0)
        tracker.cta_complete(1)

    system.engine.process(transfer_agent(system.engine, tracker))
    system.engine.process(producer(system.engine, tracker))
    system.run()
    assert log == [(1, 2.0)]


@given(num_ctas=st.integers(min_value=1, max_value=40),
       num_chunks=st.integers(min_value=1, max_value=40),
       cls=st.sampled_from([ContiguousMapping, StridedMapping]))
def test_tracker_all_chunks_ready_after_all_ctas(num_ctas, num_chunks, cls):
    """Protocol invariant: after every CTA retires, every chunk is ready,
    every counter is exactly zero, and each chunk fired exactly once."""
    system = System(PLATFORM_4X_VOLTA)
    mapping = cls(num_ctas, num_chunks)
    tracker = ReadinessTracker(system.engine, mapping)
    fired = []
    for cta in range(num_ctas):
        fired.extend(tracker.cta_complete(cta))
    assert tracker.all_ready
    assert sorted(fired) == list(range(num_chunks))
    assert all(counter == 0 for counter in tracker.counters)


# ---------------------------------------------------------------------------
# tracking_overhead (Figure 8 mechanism)
# ---------------------------------------------------------------------------

def test_tracking_overhead_scales_with_ctas():
    assert tracking_overhead(VOLTA_V100, 0) == 0.0
    one = tracking_overhead(VOLTA_V100, 1)
    assert tracking_overhead(VOLTA_V100, 1000) == pytest.approx(1000 * one)


def test_tracking_overhead_worse_on_older_architectures():
    ctas = 10_000
    assert (tracking_overhead(KEPLER_K40M, ctas)
            > tracking_overhead(PASCAL_P100, ctas)
            > tracking_overhead(VOLTA_V100, ctas))


def test_tracking_overhead_negative_ctas_rejected():
    with pytest.raises(ProactError):
        tracking_overhead(VOLTA_V100, -1)


# ---------------------------------------------------------------------------
# ProactRegion
# ---------------------------------------------------------------------------

def test_region_chunk_count_and_tail():
    region = ProactRegion(region_bytes=10 * KiB, chunk_size=4 * KiB)
    assert region.num_chunks == 3
    assert region.chunk_bytes(0) == 4 * KiB
    assert region.chunk_bytes(2) == 2 * KiB  # tail chunk


def test_region_total_bytes_conserved():
    region = ProactRegion(region_bytes=100 * KiB + 123, chunk_size=16 * KiB)
    total = sum(region.chunk_bytes(k) for k in range(region.num_chunks))
    assert total == 100 * KiB + 123


def test_region_validation():
    with pytest.raises(ProactError):
        ProactRegion(region_bytes=0, chunk_size=1024)
    with pytest.raises(ProactError):
        ProactRegion(region_bytes=1024, chunk_size=0)
    with pytest.raises(ProactError):
        ProactRegion(region_bytes=1024, chunk_size=64, readiness_shape=0.5)
    region = ProactRegion(region_bytes=1024, chunk_size=512)
    with pytest.raises(ProactError):
        region.chunk_bytes(2)


def test_readiness_schedule_ordered_writes_spread_through_kernel():
    system = System(PLATFORM_4X_VOLTA)
    gpu = system.gpus[0]
    # 5120 CTAs on Volta (1280 concurrent) -> 4 waves.
    kernel = KernelSpec("k", flops=1e9, local_bytes=0, num_ctas=5120)
    region = ProactRegion(region_bytes=4 * MiB, chunk_size=1 * MiB)
    schedule = region.readiness_schedule(gpu, kernel)
    fractions = [item.fraction for item in schedule]
    assert fractions == pytest.approx([0.25, 0.5, 0.75, 1.0])


def test_readiness_schedule_shape_skews_late():
    system = System(PLATFORM_4X_VOLTA)
    gpu = system.gpus[0]
    kernel = KernelSpec("k", flops=1e9, local_bytes=0, num_ctas=5120)
    ordered = ProactRegion(4 * MiB, 1 * MiB, readiness_shape=1.0)
    random_order = ProactRegion(4 * MiB, 1 * MiB, readiness_shape=4.0)
    f_ordered = [i.fraction for i in ordered.readiness_schedule(gpu, kernel)]
    f_random = [i.fraction for i in random_order.readiness_schedule(
        gpu, kernel)]
    # Random write order makes every non-final chunk ready later.
    for a, b in zip(f_ordered[:-1], f_random[:-1]):
        assert b > a
    assert f_random[-1] == 1.0  # the last chunk always lands at kernel end


def test_readiness_schedule_single_wave_spreads_late():
    system = System(PLATFORM_4X_VOLTA)
    gpu = system.gpus[0]
    kernel = KernelSpec("k", flops=1e9, local_bytes=0, num_ctas=64)
    region = ProactRegion(region_bytes=4 * MiB, chunk_size=1 * MiB)
    schedule = region.readiness_schedule(gpu, kernel)
    fractions = [item.fraction for item in schedule]
    # A single wave: chunks become ready within the wave's retirement
    # window, the last exactly at kernel end.
    assert all(fraction > 0.6 for fraction in fractions)
    assert fractions == sorted(fractions)
    assert fractions[-1] == pytest.approx(1.0)


@given(region_bytes=st.integers(min_value=1, max_value=1 << 22),
       chunk_size=st.integers(min_value=1 << 10, max_value=1 << 20))
def test_region_chunks_partition_region(region_bytes, chunk_size):
    region = ProactRegion(region_bytes, chunk_size)
    sizes = [region.chunk_bytes(k) for k in range(region.num_chunks)]
    assert sum(sizes) == region_bytes
    assert all(0 < size <= chunk_size for size in sizes)
