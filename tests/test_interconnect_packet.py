"""Unit and property tests for packet framing and efficiency curves."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.interconnect import (
    NVLINK_FORMAT,
    PCIE3_FORMAT,
    PacketFormat,
    figure2_curves,
    goodput_curve,
    saturation_size,
)


# ---------------------------------------------------------------------------
# Calibration against the paper's Figure 2 anchor points
# ---------------------------------------------------------------------------

def test_pcie_4byte_store_goodput_near_14_percent():
    assert PCIE3_FORMAT.efficiency(4) == pytest.approx(0.14, abs=0.02)


def test_nvlink_4byte_store_goodput_near_8_percent():
    assert NVLINK_FORMAT.efficiency(4) == pytest.approx(0.08, abs=0.02)


def test_both_formats_efficient_at_128_bytes_and_above():
    for fmt in (PCIE3_FORMAT, NVLINK_FORMAT):
        assert fmt.efficiency(128) >= 0.75
        assert fmt.efficiency(256) >= 0.85


def test_nvlink_worse_than_pcie_at_tiny_stores():
    # Figure 2: NVLink's percentage goodput is below PCIe's at 4 B.
    assert NVLINK_FORMAT.efficiency(4) < PCIE3_FORMAT.efficiency(4)


def test_saturation_size_is_128_bytes():
    assert saturation_size(PCIE3_FORMAT) == 128
    assert saturation_size(NVLINK_FORMAT) == 128


# ---------------------------------------------------------------------------
# wire_bytes mechanics
# ---------------------------------------------------------------------------

def test_wire_bytes_zero_payload():
    assert PCIE3_FORMAT.wire_bytes(0) == 0


def test_wire_bytes_single_packet():
    # 100 B on PCIe: one packet, payload padded to dword (100 is aligned).
    assert PCIE3_FORMAT.wire_bytes(100) == 24 + 100


def test_wire_bytes_pads_to_granule():
    # 5 B on NVLink pads to one 16 B flit.
    assert NVLINK_FORMAT.wire_bytes(5) == 32 + 16
    # 5 B on PCIe pads to two dwords.
    assert PCIE3_FORMAT.wire_bytes(5) == 24 + 8


def test_wire_bytes_splits_large_accesses():
    # 600 B on PCIe (max payload 256): 2 full packets + 88 B tail.
    expected = 2 * (24 + 256) + (24 + 88)
    assert PCIE3_FORMAT.wire_bytes(600) == expected


def test_packets_for():
    assert PCIE3_FORMAT.packets_for(0) == 0
    assert PCIE3_FORMAT.packets_for(1) == 1
    assert PCIE3_FORMAT.packets_for(256) == 1
    assert PCIE3_FORMAT.packets_for(257) == 2


def test_message_wire_bytes_scales_with_access_size():
    message = 1024 * 1024
    fine = NVLINK_FORMAT.message_wire_bytes(message, access_size=4)
    coarse = NVLINK_FORMAT.message_wire_bytes(message, access_size=256)
    assert fine > 5 * coarse  # fine-grained stores are dramatically worse


def test_message_wire_bytes_with_tail():
    # 300 B issued as 128 B accesses: two full + one 44 B tail access.
    expected = 2 * PCIE3_FORMAT.wire_bytes(128) + PCIE3_FORMAT.wire_bytes(44)
    assert PCIE3_FORMAT.message_wire_bytes(300, 128) == expected


def test_invalid_format_rejected():
    with pytest.raises(ConfigurationError):
        PacketFormat("bad", header_bytes=-1, payload_granule=4, max_payload=256)
    with pytest.raises(ConfigurationError):
        PacketFormat("bad", header_bytes=8, payload_granule=0, max_payload=256)
    with pytest.raises(ConfigurationError):
        PacketFormat("bad", header_bytes=8, payload_granule=16, max_payload=8)
    with pytest.raises(ConfigurationError):
        PacketFormat("bad", header_bytes=8, payload_granule=16, max_payload=100)


def test_negative_sizes_rejected():
    with pytest.raises(ConfigurationError):
        PCIE3_FORMAT.wire_bytes(-1)
    with pytest.raises(ConfigurationError):
        PCIE3_FORMAT.message_wire_bytes(-1, 4)
    with pytest.raises(ConfigurationError):
        PCIE3_FORMAT.message_wire_bytes(100, 0)


# ---------------------------------------------------------------------------
# Property-based invariants
# ---------------------------------------------------------------------------

formats = st.sampled_from([PCIE3_FORMAT, NVLINK_FORMAT])


@given(fmt=formats, payload=st.integers(min_value=1, max_value=1 << 22))
def test_wire_bytes_at_least_payload(fmt, payload):
    assert fmt.wire_bytes(payload) >= payload


@given(fmt=formats, payload=st.integers(min_value=1, max_value=1 << 22))
def test_efficiency_bounded(fmt, payload):
    eff = fmt.efficiency(payload)
    assert 0.0 < eff < 1.0


@given(fmt=formats, payload=st.integers(min_value=1, max_value=1 << 14))
def test_efficiency_monotone_up_to_max_payload(fmt, payload):
    """Within one packet, a bigger aligned access is never less efficient."""
    if payload >= fmt.max_payload:
        return
    bigger = min(payload * 2, fmt.max_payload)
    aligned = fmt.payload_granule
    p1 = (payload // aligned) * aligned or aligned
    p2 = (bigger // aligned) * aligned or aligned
    if p2 > p1:
        assert fmt.efficiency(p2) >= fmt.efficiency(p1)


@given(fmt=formats,
       message=st.integers(min_value=1, max_value=1 << 20),
       access=st.integers(min_value=1, max_value=1 << 12))
def test_message_wire_bytes_consistent_with_accesses(fmt, message, access):
    """Message framing equals per-access framing summed."""
    full, tail = divmod(message, access)
    expected = full * fmt.wire_bytes(access)
    if tail:
        expected += fmt.wire_bytes(tail)
    assert fmt.message_wire_bytes(message, access) == expected


@given(fmt=formats, message=st.integers(min_value=1, max_value=1 << 20))
def test_coarser_access_never_more_wire_bytes(fmt, message):
    """Doubling the access size never increases wire traffic."""
    sizes = [4, 8, 16, 32, 64, 128, 256]
    wire = [fmt.message_wire_bytes(message, s) for s in sizes]
    assert wire == sorted(wire, reverse=True)


# ---------------------------------------------------------------------------
# Curve helpers
# ---------------------------------------------------------------------------

def test_goodput_curve_shape():
    curve = goodput_curve(NVLINK_FORMAT)
    fractions = [point.goodput_fraction for point in curve]
    assert fractions[0] < 0.05  # 1-byte stores are terrible
    assert fractions[-1] > 0.8  # 1 KiB is efficient


def test_figure2_has_both_series():
    curves = figure2_curves()
    assert set(curves) == {"PCIe", "NVLink"}
    assert len(curves["PCIe"]) == len(curves["NVLink"])
