"""Fast scenario tests for the paper's mechanism orderings.

The benchmark harness regenerates the full figures; these reduced-size
runs keep the decisive *orderings* under test in the regular suite.
"""

from repro.core import MECH_CDP, MECH_POLLING, ProactConfig
from repro.core.profiler import run_phases
from repro.hw import (
    PLATFORM_4X_KEPLER,
    PLATFORM_4X_PASCAL,
    PLATFORM_4X_VOLTA,
)
from repro.units import KiB, MiB
from repro.workloads import MicroBenchmark, memcpy_duplication_time
from repro.runtime import System

DATA = 16 * MiB


def micro_speedup(platform, mechanism, chunk_size, threads):
    micro = MicroBenchmark(data_bytes=DATA)
    baseline = (2 * memcpy_duplication_time(System(platform), DATA)
                + platform.gpu.kernel_launch_latency)
    runtime = run_phases(platform, ProactConfig(mechanism, chunk_size,
                                                threads),
                         micro.phase_builder())
    return baseline / runtime


# ---------------------------------------------------------------------------
# Section V-A orderings
# ---------------------------------------------------------------------------

def test_kepler_polling_underperforms_memcpy_and_cdp():
    polling = micro_speedup(PLATFORM_4X_KEPLER, MECH_POLLING, 256 * KiB, 256)
    cdp = micro_speedup(PLATFORM_4X_KEPLER, MECH_CDP, 256 * KiB, 256)
    assert polling < 1.0 < cdp


def test_kepler_cdp_initiation_bound_below_16kb():
    fine = micro_speedup(PLATFORM_4X_KEPLER, MECH_CDP, 4 * KiB, 256)
    coarse = micro_speedup(PLATFORM_4X_KEPLER, MECH_CDP, 256 * KiB, 256)
    assert fine < 1.05 < coarse


def test_volta_cdp_slow_at_low_granularity_polling_steady():
    cdp_fine = micro_speedup(PLATFORM_4X_VOLTA, MECH_CDP, 16 * KiB, 2048)
    cdp_coarse = micro_speedup(PLATFORM_4X_VOLTA, MECH_CDP, 1 * MiB, 2048)
    poll_fine = micro_speedup(PLATFORM_4X_VOLTA, MECH_POLLING,
                              16 * KiB, 2048)
    assert cdp_fine < 0.5          # Volta CDP launches are prohibitive
    assert cdp_coarse > 1.3
    assert poll_fine > 1.3         # polling is fine at the same grain


def test_pascal_peaks_in_bandwidth_bound_region():
    for mechanism in (MECH_CDP, MECH_POLLING):
        peak = micro_speedup(PLATFORM_4X_PASCAL, mechanism, 1 * MiB, 4096)
        assert 1.4 < peak < 2.0  # bounded by the 2x overlap ideal


def test_tail_bound_region_on_every_platform():
    """One giant chunk forfeits all overlap: speedup collapses toward
    (and below) the bulk baseline."""
    for platform, threads in ((PLATFORM_4X_KEPLER, 256),
                              (PLATFORM_4X_PASCAL, 4096),
                              (PLATFORM_4X_VOLTA, 2048)):
        giant = micro_speedup(platform, MECH_POLLING, DATA, threads)
        tuned = micro_speedup(platform, MECH_POLLING, 256 * KiB, threads)
        assert giant < tuned


def test_transfer_threads_gate_interconnect_saturation():
    """Too few transfer threads starve the links (Figure 4)."""
    starved = micro_speedup(PLATFORM_4X_VOLTA, MECH_POLLING, 256 * KiB, 32)
    saturated = micro_speedup(PLATFORM_4X_VOLTA, MECH_POLLING,
                              256 * KiB, 2048)
    assert saturated > 1.5 * starved
