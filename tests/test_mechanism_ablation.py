"""Mechanism-toggle API and ablation harness tests.

Pins the contract of the first-class ablation surface: the typed
:class:`~repro.core.config.Mechanisms` switches, run-set generation
(baseline + N single flips, never a double flip), the all-on
configuration being byte-identical to the unablated paradigms, and
every single flip actually changing a simulated runtime.
"""

import dataclasses

import pytest

from repro.ablation import (
    BASELINE,
    AblationRun,
    framework_runtime,
    generate_runset,
    run_ablation,
)
from repro.core.config import DEFAULT_CONFIG, Mechanisms
from repro.core.profiler import Profiler
from repro.errors import ConfigurationError, ProactError
from repro.experiments.fig7_endtoend import decoupled_config_for
from repro.hw.platform import PLATFORM_4X_VOLTA
from repro.paradigms import ProactDecoupledParadigm, ProactInlineParadigm
from repro.workloads import PageRankWorkload, XrayCtWorkload

PLATFORM = PLATFORM_4X_VOLTA


# ----------------------------------------------------------------------
# Mechanisms: the typed switch surface
# ----------------------------------------------------------------------
def test_component_names_and_defaults():
    names = Mechanisms.component_names()
    assert names == ("write_coalescing", "decoupled_agent",
                     "readiness_tracking", "fluid_contention",
                     "packet_overhead", "profiler_pruning")
    default = Mechanisms()
    assert default.all_enabled
    assert default.ablated == ()
    assert default.signature() == "default"


def test_ablate_and_flip():
    ablated = Mechanisms.ablate("write_coalescing", "packet_overhead")
    assert ablated.ablated == ("write_coalescing", "packet_overhead")
    assert not ablated.write_coalescing
    assert ablated.decoupled_agent
    assert ablated.signature() == "ablate:write_coalescing,packet_overhead"
    # flip() toggles: off -> on restores the default.
    assert ablated.flip("write_coalescing").ablated == ("packet_overhead",)
    assert Mechanisms().flip("fluid_contention") == (
        Mechanisms.ablate("fluid_contention"))


def test_unknown_component_rejected():
    with pytest.raises(ConfigurationError, match="unknown mechanism"):
        Mechanisms.ablate("warp_specialization")
    with pytest.raises(ConfigurationError, match="unknown mechanism"):
        Mechanisms().flip("nope")


def test_mechanisms_is_frozen_and_hashable():
    with pytest.raises(dataclasses.FrozenInstanceError):
        Mechanisms().write_coalescing = False
    assert Mechanisms() in {Mechanisms()}


# ----------------------------------------------------------------------
# Run-set generation
# ----------------------------------------------------------------------
def test_runset_is_baseline_plus_single_flips():
    runs = generate_runset()
    names = Mechanisms.component_names()
    assert len(runs) == 1 + len(names)
    assert runs[0].is_baseline
    assert runs[0].mechanisms.all_enabled
    assert runs[0].label() == BASELINE
    for run, component in zip(runs[1:], names):
        assert run.component == component
        # Exactly one switch off, and it is this run's component.
        assert run.mechanisms.ablated == (component,)
        assert run.label() == f"-{component}"
    # No two runs flip the same switch.
    flipped = [run.component for run in runs[1:]]
    assert len(set(flipped)) == len(flipped)


def test_runset_restricted_and_ordered():
    runs = generate_runset(["packet_overhead", "decoupled_agent"])
    assert [run.component for run in runs] == [
        BASELINE, "packet_overhead", "decoupled_agent"]


def test_runset_rejects_duplicates_and_unknowns():
    with pytest.raises(ConfigurationError, match="duplicate"):
        generate_runset(["write_coalescing", "write_coalescing"])
    with pytest.raises(ConfigurationError, match="unknown mechanism"):
        generate_runset(["write_coalescing", "nope"])


# ----------------------------------------------------------------------
# All-on is byte-identical to the unablated paradigms
# ----------------------------------------------------------------------
def test_all_on_byte_identical_to_unablated():
    workload = PageRankWorkload()
    config = decoupled_config_for(PLATFORM)
    unablated = ProactDecoupledParadigm(config).execute(
        workload, PLATFORM).runtime
    all_on = ProactDecoupledParadigm(
        config, mechanisms=Mechanisms()).execute(workload, PLATFORM).runtime
    assert all_on == unablated  # exact float equality, not approx

    inline_unablated = ProactInlineParadigm().execute(
        workload, PLATFORM).runtime
    inline_all_on = ProactInlineParadigm(mechanisms=Mechanisms()).execute(
        workload, PLATFORM).runtime
    assert inline_all_on == inline_unablated


def test_every_single_flip_changes_runtime():
    """Each switch is load-bearing: flipping it moves the simulated
    time of at least one workload."""
    workloads = [XrayCtWorkload(), PageRankWorkload()]
    baselines = {w.name: framework_runtime(w, PLATFORM, Mechanisms())
                 for w in workloads}
    for run in generate_runset():
        if run.is_baseline:
            continue
        changed = any(
            framework_runtime(w, PLATFORM, run.mechanisms)
            != baselines[w.name]
            for w in workloads)
        assert changed, (
            f"ablating {run.component} left every workload's runtime "
            "unchanged")


# ----------------------------------------------------------------------
# Ablated-mechanism semantics at the executor/profiler layer
# ----------------------------------------------------------------------
def test_decoupled_paradigm_rejects_ablated_agent():
    paradigm = ProactDecoupledParadigm(
        DEFAULT_CONFIG, mechanisms=Mechanisms.ablate("decoupled_agent"))
    with pytest.raises(ConfigurationError, match="decoupled_agent"):
        paradigm.execute(PageRankWorkload(), PLATFORM)


def test_inline_paradigm_tolerates_ablated_agent():
    result = ProactInlineParadigm(
        mechanisms=Mechanisms.ablate("decoupled_agent")).execute(
        PageRankWorkload(), PLATFORM)
    assert result.runtime > 0


def test_profiler_toggles_collapse_sweep_to_inline():
    profiler = Profiler(PLATFORM,
                        toggles=Mechanisms.ablate("decoupled_agent"))
    assert profiler.mechanisms == ("inline",)


def test_profiler_toggles_change_sweep_signature():
    default_sig = Profiler(PLATFORM).sweep_signature()
    ablated_sig = Profiler(
        PLATFORM,
        toggles=Mechanisms.ablate("write_coalescing")).sweep_signature()
    assert "ablate:write_coalescing" in ablated_sig
    assert default_sig != ablated_sig
    # All-on toggles keep the historical signature: cache hits survive.
    all_on_sig = Profiler(PLATFORM, toggles=Mechanisms()).sweep_signature()
    assert all_on_sig == default_sig


def test_profiler_rejects_empty_sweep_space():
    with pytest.raises(ProactError, match="inline"):
        Profiler(PLATFORM, mechanisms=("polling", "cdp"),
                 toggles=Mechanisms.ablate("decoupled_agent"))


# ----------------------------------------------------------------------
# The ablation report
# ----------------------------------------------------------------------
def test_run_ablation_report_shape():
    report = run_ablation(
        PLATFORM, workloads=[PageRankWorkload()],
        components=["write_coalescing", "fluid_contention"])
    assert report.platform == PLATFORM.name
    assert report.workloads == ("Pagerank",)
    assert report.baseline_runtimes["Pagerank"] > 0
    assert {entry.component for entry in report.components} == {
        "write_coalescing", "fluid_contention"}
    # Removing write coalescing hurts; removing the contention model
    # (a modelled cost) flatters the runtime.
    assert report.component("write_coalescing").importance > 0
    assert report.component("fluid_contention").importance < 0
    assert report.rank_of("write_coalescing") == 1
    assert report.rank_of("fluid_contention") == 2
    rendered = report.table().render()
    assert "write_coalescing" in rendered
    assert "geomean" in rendered
    with pytest.raises(ConfigurationError, match="not in this report"):
        report.rank_of("decoupled_agent")


def test_run_ablation_accepts_platform_name():
    report = run_ablation(
        PLATFORM.name, workloads=[PageRankWorkload()],
        components=["packet_overhead"])
    assert report.platform == PLATFORM.name


def test_run_ablation_requires_one_baseline():
    runs = [AblationRun("write_coalescing",
                        Mechanisms.ablate("write_coalescing"))]
    with pytest.raises(ConfigurationError, match="baseline"):
        run_ablation(PLATFORM, workloads=[PageRankWorkload()], runs=runs)
