"""Executor tests: collectives running on the simulated fabric.

Covers the acceptance properties:

* every GPU ends an all-reduce holding the identical fully-reduced
  payload (contributor accounting over the executed schedule);
* ring all-reduce sources exactly ``2 (N-1)/N * nbytes`` per GPU;
* chunked ring beats the unchunked direct bulk exchange on at least one
  platform, while tree beats ring at small payloads on at least one.
"""

import pytest

from repro.collectives import (
    ALGO_DIRECT,
    ALGO_RING,
    ALGO_TREE,
    ALL_COLLECTIVES,
    COLL_ALL_REDUCE,
    CollectiveExecutor,
    build_schedule,
    run_collective,
    supported_algorithms,
    verify_schedule,
)
from repro.errors import CollectiveError, ConfigurationError
from repro.hw.platform import PLATFORMS
from repro.interconnect.route import TransferReceipt
from repro.obs.metrics import MetricsRegistry
from repro.runtime.system import System
from repro.sim.trace import Tracer
from repro.units import KiB, MiB

TABLE_I = ("4x_kepler", "4x_pascal", "4x_volta", "16x_volta")


# ---------------------------------------------------------------------------
# Every collective x algorithm runs on every Table I platform
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("platform_name", TABLE_I)
def test_all_collectives_run_on_every_platform(platform_name):
    platform = PLATFORMS[platform_name]
    for collective in ALL_COLLECTIVES:
        for algorithm in supported_algorithms(collective,
                                              platform.num_gpus):
            result = run_collective(platform, collective, algorithm,
                                    1 * MiB, 256 * KiB)
            assert result.duration > 0
            assert result.bus_bandwidth > 0
            assert result.op_count > 0
            assert result.collective == collective
            assert result.algorithm == algorithm
            assert result.num_gpus == platform.num_gpus


def test_all_reduce_accounting_is_identical_everywhere():
    # Property (a): after all-reduce, every GPU's every chunk carries
    # contributions from every GPU — the same fully-reduced value.
    for algorithm in (ALGO_DIRECT, ALGO_RING, ALGO_TREE):
        schedule = build_schedule(COLL_ALL_REDUCE, algorithm, 4,
                                  1 * MiB + 13, 128 * KiB)
        buffers = verify_schedule(schedule)
        everyone = frozenset(range(4))
        reference = buffers[0]
        for gpu in range(4):
            assert buffers[gpu] == reference
            assert all(payload == everyone
                       for payload in buffers[gpu].values())
        # And the executed run agrees with the schedule's accounting.
        result = run_collective(PLATFORMS["4x_volta"], COLL_ALL_REDUCE,
                                algorithm, 1 * MiB + 13, 128 * KiB)
        assert result.sent_bytes == tuple(
            schedule.sent_bytes(gpu) for gpu in range(4))


def test_ring_all_reduce_wire_bytes_are_bandwidth_optimal():
    # Property (b): each GPU sources exactly 2 (N-1)/N of the payload.
    for platform_name, num_gpus in (("4x_volta", 4), ("16x_volta", 16)):
        nbytes = 8 * MiB
        result = run_collective(PLATFORMS[platform_name], COLL_ALL_REDUCE,
                                ALGO_RING, nbytes, 256 * KiB)
        expected = 2 * (num_gpus - 1) * nbytes // num_gpus
        assert result.sent_bytes == (expected,) * num_gpus


def test_chunked_ring_beats_direct_bulk_and_tree_beats_ring_small():
    # Property (c), bandwidth side: on the PCIe tree the direct exchange
    # crams N*(N-1) bulk messages through shared root links; the chunked
    # ring pipelines disjoint link pairs.
    kepler = PLATFORMS["4x_kepler"]
    nbytes = 16 * MiB
    ring = run_collective(kepler, COLL_ALL_REDUCE, ALGO_RING, nbytes,
                          256 * KiB)
    bulk = run_collective(kepler, COLL_ALL_REDUCE, ALGO_DIRECT, nbytes,
                          chunk_size=nbytes)
    assert ring.duration < bulk.duration

    # Latency side: at small payloads the 16-GPU ring pays 2(N-1) = 30
    # serial hops; the tree finishes in 2 log2(N) = 8 rounds.
    volta16 = PLATFORMS["16x_volta"]
    small = 64 * KiB
    ring_small = run_collective(volta16, COLL_ALL_REDUCE, ALGO_RING,
                                small, 16 * KiB)
    tree_small = run_collective(volta16, COLL_ALL_REDUCE, ALGO_TREE,
                                small, 16 * KiB)
    assert tree_small.duration < ring_small.duration


def test_chunking_overlaps_ring_hops():
    # Pipelining: on a multi-hop bandwidth-bound broadcast, fine chunks
    # must beat one bulk message per hop (store-and-forward).
    kepler = PLATFORMS["4x_kepler"]
    nbytes = 16 * MiB
    chunked = run_collective(kepler, "broadcast", ALGO_RING, nbytes,
                             256 * KiB)
    bulk = run_collective(kepler, "broadcast", ALGO_RING, nbytes,
                          chunk_size=nbytes)
    assert chunked.duration < bulk.duration


# ---------------------------------------------------------------------------
# System entry point, loopback, misuse
# ---------------------------------------------------------------------------

def test_system_collective_entry_point():
    system = System.from_name("4x_volta")
    proc = system.collective("all_reduce", 4 * MiB, algorithm="ring",
                             chunk_size=256 * KiB)
    result = system.run(until=proc)
    assert result.collective == "all_reduce"
    assert result.duration > 0
    # Default chunk size comes from the PROACT config knob.
    from repro.core.config import DEFAULT_CONFIG
    proc = system.collective("broadcast", 1 * MiB)
    assert system.run(until=proc).chunk_size == DEFAULT_CONFIG.chunk_size


def test_fabric_send_to_self_is_zero_cost():
    system = System.from_name("4x_volta")
    event = system.fabric.send(2, 2, 1 * MiB, access_size=256)
    receipt = system.run(until=event)
    assert isinstance(receipt, TransferReceipt)
    assert receipt.src == receipt.dst == 2
    assert receipt.wire_bytes == 0
    assert receipt.payload_bytes == 1 * MiB
    assert receipt.end_time == receipt.start_time == 0.0
    assert system.now == 0.0


def test_fabric_send_to_self_still_validates():
    system = System.from_name("4x_volta")
    with pytest.raises(ConfigurationError):
        system.fabric.send(7, 7, 1 * MiB, access_size=256)
    with pytest.raises(ConfigurationError):
        system.fabric.send(1, 1, -1, access_size=256)
    with pytest.raises(ConfigurationError):
        system.fabric.send(1, 1, 1 * MiB, access_size=0)
    # route() keeps rejecting self-routes: only send() has the loopback.
    with pytest.raises(ConfigurationError):
        system.fabric.route(1, 1)


def test_single_gpu_collective_completes_instantly():
    system = System(PLATFORMS["4x_volta"], num_gpus=1)
    proc = system.collective("all_reduce", 16 * MiB)
    result = system.run(until=proc)
    assert result.duration == 0.0


def test_executor_rejects_mismatched_gpu_count():
    system = System.from_name("4x_volta")
    schedule = build_schedule(COLL_ALL_REDUCE, ALGO_RING, 8, 1 * MiB,
                              256 * KiB)
    with pytest.raises(CollectiveError):
        CollectiveExecutor(system).launch(schedule)


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------

def test_collective_steps_are_traced_into_gpu_lanes():
    tracer = Tracer()
    metrics = MetricsRegistry()
    system = System(PLATFORMS["4x_volta"], tracer=tracer, metrics=metrics)
    proc = system.collective("all_reduce", 1 * MiB, algorithm="ring",
                             chunk_size=256 * KiB)
    system.run(until=proc)

    channels = {record.channel for record in tracer.records}
    for gpu in range(4):
        assert f"gpu{gpu}.coll" in channels
    assert "collective" in channels
    spans = [record for record in tracer.records
             if record.channel == "collective"]
    assert spans and spans[0].label == "all_reduce:ring"

    snapshot = metrics.snapshot()
    assert any("collective_runtime_ms" in key
               for key in snapshot["histograms"])
    assert any("collective_bytes" in key for key in snapshot["counters"])
