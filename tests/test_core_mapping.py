"""Unit and property tests for block-to-chunk mappings."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.mapping import (
    ContiguousMapping,
    CustomMapping,
    StencilMapping,
    StridedMapping,
)
from repro.errors import ProactError


# ---------------------------------------------------------------------------
# Contiguous
# ---------------------------------------------------------------------------

def test_contiguous_equal_split():
    mapping = ContiguousMapping(num_ctas=4, num_chunks=4)
    assert list(mapping.chunks_of_cta(0)) == [0]
    assert list(mapping.chunks_of_cta(3)) == [3]
    assert mapping.writers_per_chunk() == [1, 1, 1, 1]
    assert mapping.last_writer_of_chunk() == [0, 1, 2, 3]


def test_contiguous_many_ctas_per_chunk():
    mapping = ContiguousMapping(num_ctas=8, num_chunks=2)
    assert mapping.writers_per_chunk() == [4, 4]
    assert mapping.last_writer_of_chunk() == [3, 7]


def test_contiguous_more_chunks_than_ctas():
    mapping = ContiguousMapping(num_ctas=2, num_chunks=8)
    assert list(mapping.chunks_of_cta(0)) == [0, 1, 2, 3]
    assert list(mapping.chunks_of_cta(1)) == [4, 5, 6, 7]
    assert mapping.writers_per_chunk() == [1] * 8


def test_contiguous_uneven_split_covers_everything():
    mapping = ContiguousMapping(num_ctas=3, num_chunks=7)
    counts = mapping.writers_per_chunk()
    assert all(count >= 1 for count in counts)


# ---------------------------------------------------------------------------
# Strided
# ---------------------------------------------------------------------------

def test_strided_round_robin():
    mapping = StridedMapping(num_ctas=8, num_chunks=4)
    assert list(mapping.chunks_of_cta(0)) == [0]
    assert list(mapping.chunks_of_cta(5)) == [1]
    assert mapping.writers_per_chunk() == [2, 2, 2, 2]
    # Last writers are the final round of CTAs.
    assert mapping.last_writer_of_chunk() == [4, 5, 6, 7]


def test_strided_fewer_ctas_than_chunks():
    mapping = StridedMapping(num_ctas=2, num_chunks=6)
    assert list(mapping.chunks_of_cta(0)) == [0, 2, 4]
    assert list(mapping.chunks_of_cta(1)) == [1, 3, 5]
    assert mapping.writers_per_chunk() == [1] * 6


# ---------------------------------------------------------------------------
# Stencil
# ---------------------------------------------------------------------------

def test_stencil_includes_halo():
    mapping = StencilMapping(num_ctas=4, num_chunks=4, halo=1)
    assert list(mapping.chunks_of_cta(0)) == [0, 1]       # left edge
    assert list(mapping.chunks_of_cta(1)) == [0, 1, 2]
    assert list(mapping.chunks_of_cta(3)) == [2, 3]       # right edge


def test_stencil_zero_halo_equals_contiguous():
    stencil = StencilMapping(num_ctas=4, num_chunks=4, halo=0)
    contiguous = ContiguousMapping(num_ctas=4, num_chunks=4)
    for cta in range(4):
        assert (list(stencil.chunks_of_cta(cta))
                == list(contiguous.chunks_of_cta(cta)))


def test_stencil_negative_halo_rejected():
    with pytest.raises(ProactError):
        StencilMapping(num_ctas=4, num_chunks=4, halo=-1)


# ---------------------------------------------------------------------------
# Custom
# ---------------------------------------------------------------------------

def test_custom_mapping():
    mapping = CustomMapping(num_ctas=4, num_chunks=2,
                            mapper=lambda cta: [cta % 2])
    assert mapping.writers_per_chunk() == [2, 2]


def test_custom_mapping_invalid_chunk_rejected():
    mapping = CustomMapping(num_ctas=2, num_chunks=2,
                            mapper=lambda cta: [cta + 5])
    with pytest.raises(ProactError):
        mapping.chunks_of_cta(0)


def test_custom_mapping_without_cover_rejected():
    mapping = CustomMapping(num_ctas=2, num_chunks=3,
                            mapper=lambda cta: [cta])  # chunk 2 unwritten
    with pytest.raises(ProactError):
        mapping.writers_per_chunk()


# ---------------------------------------------------------------------------
# Shared validation
# ---------------------------------------------------------------------------

def test_bounds_validation():
    with pytest.raises(ProactError):
        ContiguousMapping(num_ctas=0, num_chunks=1)
    with pytest.raises(ProactError):
        ContiguousMapping(num_ctas=1, num_chunks=0)
    mapping = ContiguousMapping(num_ctas=4, num_chunks=4)
    with pytest.raises(ProactError):
        mapping.chunks_of_cta(4)
    with pytest.raises(ProactError):
        mapping.chunks_of_cta(-1)


# ---------------------------------------------------------------------------
# Property: every mapping is a cover and counters are consistent
# ---------------------------------------------------------------------------

mapping_cases = st.tuples(
    st.sampled_from([ContiguousMapping, StridedMapping, StencilMapping]),
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=1, max_value=64),
)


@given(case=mapping_cases)
def test_writers_counts_match_enumeration(case):
    cls, num_ctas, num_chunks = case
    mapping = cls(num_ctas, num_chunks)
    counts = mapping.writers_per_chunk()
    total_writes = sum(
        len(list(mapping.chunks_of_cta(cta))) for cta in range(num_ctas))
    assert sum(counts) == total_writes
    assert len(counts) == num_chunks
    assert all(count >= 1 for count in counts)


@given(case=mapping_cases)
def test_last_writer_is_a_writer(case):
    cls, num_ctas, num_chunks = case
    mapping = cls(num_ctas, num_chunks)
    last = mapping.last_writer_of_chunk()
    for chunk, cta in enumerate(last):
        assert chunk in list(mapping.chunks_of_cta(cta))
