"""Property-based tests for collective schedules.

Random, valid-by-construction collective specs come from
:mod:`tests.strategies`; every generated schedule must survive the
symbolic payload replay, and ring all-reduce must hit the
bandwidth-optimal byte count exactly.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.collectives.algorithms import build_schedule
from repro.collectives.schedule import verify_schedule
from repro.units import KiB, MiB
from tests.strategies import chunk_sizes, collective_specs

fast_settings = settings(
    max_examples=30, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])


@fast_settings
@given(spec=collective_specs())
def test_verify_schedule_accepts_every_generated_schedule(spec):
    """The contributor-set oracle accepts all compiled schedules —
    direct, ring, and tree, at every supported GPU count."""
    collective, algorithm, num_gpus, nbytes, chunk_size, root = spec
    schedule = build_schedule(collective, algorithm, num_gpus, nbytes,
                              chunk_size, root=root)
    verify_schedule(schedule)  # raises CollectiveError on any bad schedule
    assert schedule.ops, "a non-empty collective must move data"
    assert all(0 <= op.src < num_gpus and 0 <= op.dst < num_gpus
               for op in schedule.ops)


@fast_settings
@given(spec=collective_specs())
def test_op_dependencies_reference_earlier_ops(spec):
    """Every dependency edge points backwards: the schedule is a DAG in
    op-index order, so the executor can never deadlock on it."""
    collective, algorithm, num_gpus, nbytes, chunk_size, root = spec
    schedule = build_schedule(collective, algorithm, num_gpus, nbytes,
                              chunk_size, root=root)
    for op in schedule.ops:
        assert all(dep < op.index for dep in op.deps)


@fast_settings
@given(num_gpus=st.sampled_from([2, 3, 4, 6, 8, 16]),
       per_shard=st.integers(min_value=1 * KiB, max_value=2 * MiB),
       chunk_size=chunk_sizes(min_size=64 * KiB, max_size=1 * MiB))
def test_ring_all_reduce_moves_exactly_the_optimal_bytes(
        num_gpus, per_shard, chunk_size):
    """Ring all-reduce sources exactly 2(N-1)/N * payload bytes per GPU
    for random GPU counts and (shard-aligned) payload sizes."""
    nbytes = num_gpus * per_shard
    schedule = build_schedule("all_reduce", "ring", num_gpus, nbytes,
                              chunk_size)
    optimal = 2 * (num_gpus - 1) * nbytes // num_gpus
    for gpu in range(num_gpus):
        assert schedule.sent_bytes(gpu) == optimal
    total = sum(op.nbytes for op in schedule.ops)
    assert total == num_gpus * optimal


@fast_settings
@given(spec=collective_specs(max_gpus=4, max_bytes=1 * MiB))
def test_total_schedule_bytes_cover_the_payload(spec):
    """No algorithm can distribute a payload with fewer total bytes than
    the payload share every non-source GPU must receive."""
    collective, algorithm, num_gpus, nbytes, chunk_size, root = spec
    schedule = build_schedule(collective, algorithm, num_gpus, nbytes,
                              chunk_size, root=root)
    total = sum(op.nbytes for op in schedule.ops)
    if collective == "broadcast":
        # Every non-root GPU needs the whole payload once.
        assert total >= nbytes * (num_gpus - 1)
    else:
        # Reductions/gathers must cross at least the (N-1)/N shard floor.
        assert total >= (num_gpus - 1) * (nbytes // num_gpus)
