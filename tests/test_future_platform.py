"""Tests for the forward-looking A100/NVLink3 platform extension."""

from repro.hw import AMPERE_A100, PLATFORM_8X_AMPERE, VOLTA_V100
from repro.paradigms import (
    BulkMemcpyParadigm,
    InfiniteBandwidthParadigm,
    ProactDecoupledParadigm,
)
from repro.workloads import PageRankWorkload


def test_a100_spec_advances_over_v100():
    assert AMPERE_A100.tflops > VOLTA_V100.tflops
    assert AMPERE_A100.mem_bandwidth > VOLTA_V100.mem_bandwidth
    assert AMPERE_A100.num_sms > VOLTA_V100.num_sms
    assert PLATFORM_8X_AMPERE.interconnect.bidir_bw_per_gpu == 600e9


def test_proact_conclusions_carry_to_next_generation():
    """The paper's conclusion: runtimes like PROACT will be necessary to
    leverage next-generation architectures.  On the A100-class system
    the PROACT-vs-bulk gap persists (compute grows faster than the
    interconnect, so overlap matters at least as much)."""
    workload = PageRankWorkload(iterations=3)
    reference = InfiniteBandwidthParadigm().execute(
        workload, PLATFORM_8X_AMPERE.with_num_gpus(1)).runtime
    proact = reference / ProactDecoupledParadigm().execute(
        workload, PLATFORM_8X_AMPERE).runtime
    memcpy = reference / BulkMemcpyParadigm().execute(
        workload, PLATFORM_8X_AMPERE).runtime
    ideal = reference / InfiniteBandwidthParadigm().execute(
        workload, PLATFORM_8X_AMPERE).runtime
    assert proact > 2 * memcpy
    assert proact >= 0.7 * ideal
