"""Tests for the Heat2D stencil workload (library extension)."""

import numpy as np
import pytest

from repro.hw import PLATFORM_4X_VOLTA
from repro.paradigms import (
    BulkMemcpyParadigm,
    InfiniteBandwidthParadigm,
    ProactInlineParadigm,
    UnifiedMemoryParadigm,
)
from repro.runtime import System
from repro.workloads import Heat2DWorkload
from repro.workloads.stencil2d import _heat_partitioned, _initial_grid


def test_functional_partition_invariance():
    for partitions in (1, 2, 3, 4):
        check = Heat2DWorkload().verify_functional(
            num_partitions=partitions)
        assert check.passed, partitions


def test_heat_spreads_downward_over_time():
    short = _heat_partitioned(side=32, iterations=5, num_partitions=2)
    long = _heat_partitioned(side=32, iterations=40, num_partitions=2)
    # Heat moves one row per sweep: after 5 sweeps row 3 is warm but
    # row 8 still cold; after 40 sweeps row 8 has warmed too.
    assert short[3, 16] > 0.0
    assert short[8, 16] == 0.0
    assert long[8, 16] > 0.0
    assert long[3, 16] > short[3, 16]


def test_boundaries_fixed():
    grid = _heat_partitioned(side=24, iterations=15, num_partitions=3)
    assert np.allclose(grid[0, :], _initial_grid(24)[0, :])


def test_timing_layer_exchanges_halo_bands_only():
    workload = Heat2DWorkload(grid_side=16_384, exchange_rows=64)
    works = workload.build_phases(System(PLATFORM_4X_VOLTA))[0]
    block_bytes = (16_384 // 4) * 16_384 * 8
    band_bytes = 2 * 64 * 16_384 * 8
    assert works[0].region_bytes == band_bytes
    assert works[0].region_bytes < 0.05 * block_bytes
    # Only the two adjacent blocks consume the halos.
    assert works[0].peer_fraction == pytest.approx(2 / 3)


def test_paradigm_shapes():
    workload = Heat2DWorkload()
    platform = PLATFORM_4X_VOLTA
    reference = InfiniteBandwidthParadigm().execute(
        workload, platform.with_num_gpus(1)).runtime

    def speedup(paradigm):
        return reference / paradigm.execute(workload, platform).runtime

    memcpy = speedup(BulkMemcpyParadigm())
    um = speedup(UnifiedMemoryParadigm())
    inline = speedup(ProactInlineParadigm())
    # Dense, regular writes: inline PROACT leads; UM's touch-only halo
    # migration beats wholesale duplication.
    assert inline > um > memcpy > 2.0
