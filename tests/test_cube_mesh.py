"""Tests for the hybrid cube-mesh topology (DGX-1V style)."""

import pytest

from repro.errors import ConfigurationError
from repro.hw import PLATFORM_8X_VOLTA_CUBE
from repro.interconnect import NVLINK2_CUBE_MESH, Fabric
from repro.sim import Engine
from repro.units import MiB


def make_fabric(num_gpus=8):
    return Fabric(Engine(), NVLINK2_CUBE_MESH, num_gpus=num_gpus)


def test_link_count():
    fabric = make_fabric()
    # Two quads: 2 x 6 bidirectional pairs; 4 cross pairs; x2 directions.
    assert len(fabric.links) == (12 + 4) * 2


def test_per_link_bandwidth_split_four_ways():
    fabric = make_fabric()
    # 300 GB/s bidir -> 150 per direction -> / 4 links.
    assert fabric.peak_p2p_bandwidth(0, 1) == pytest.approx(37.5e9)


def test_adjacent_pairs_have_direct_routes():
    fabric = make_fabric()
    for src, dst in [(0, 1), (2, 3), (4, 7), (0, 4), (3, 7)]:
        assert len(fabric.route(src, dst).links) == 1


def test_cross_quad_nonpartner_pairs_take_two_hops():
    fabric = make_fabric()
    for src, dst in [(0, 5), (0, 6), (0, 7), (5, 0), (6, 3), (2, 4)]:
        route = fabric.route(src, dst)
        assert len(route.links) == 2
        # First hop stays in the source quad; second is the cross link.
        first, second = route.links
        assert first.name.startswith(f"nvlink:gpu{src}->")
        assert second.name.endswith(f"->gpu{dst}")


def test_two_hop_route_throughput_is_bottleneck_rate():
    engine = Engine()
    fabric = Fabric(engine, NVLINK2_CUBE_MESH, num_gpus=8)
    payload = 8 * MiB
    receipt = engine.run(until=fabric.send(0, 5, payload, 256))
    fmt = NVLINK2_CUBE_MESH.fmt
    wire = fmt.message_wire_bytes(payload, 256)
    # Pipelined store-and-forward: close to single-hop wire time.
    assert receipt.duration < wire / 37.5e9 * 1.1 + 2 * NVLINK2_CUBE_MESH.latency + 1e-4


def test_two_hop_routes_contend_on_shared_quad_link():
    """0->5 and 0->1 both use the 0->1 link."""
    engine = Engine()
    fabric = Fabric(engine, NVLINK2_CUBE_MESH, num_gpus=8)
    payload = 8 * MiB
    a = fabric.send(0, 5, payload, 256)
    b = fabric.send(0, 1, payload, 256)
    engine.run(until=engine.all_of([a, b]))
    shared = engine.now

    engine2 = Engine()
    fabric2 = Fabric(engine2, NVLINK2_CUBE_MESH, num_gpus=8)
    engine2.run(until=fabric2.send(0, 1, payload, 256))
    solo = engine2.now
    assert shared > 1.7 * solo


def test_half_cube_degenerates_to_quad():
    fabric = make_fabric(num_gpus=4)
    assert len(fabric.links) == 12
    assert len(fabric.route(0, 3).links) == 1


def test_invalid_gpu_counts_rejected():
    with pytest.raises(ConfigurationError):
        make_fabric(num_gpus=6)
    with pytest.raises(ConfigurationError):
        make_fabric(num_gpus=16)


def test_platform_runs_end_to_end():
    from repro.paradigms import BulkMemcpyParadigm, ProactDecoupledParadigm
    from repro.workloads import PageRankWorkload

    workload = PageRankWorkload(num_vertices=2_000_000,
                                num_edges=60_000_000, iterations=2)
    bulk = BulkMemcpyParadigm().execute(workload, PLATFORM_8X_VOLTA_CUBE)
    proact = ProactDecoupledParadigm().execute(workload,
                                               PLATFORM_8X_VOLTA_CUBE)
    assert proact.runtime < bulk.runtime
    # At 8 GPUs PROACT's per-peer mapping moves less than wholesale
    # duplication (consumer_peer_fraction < 1 beyond 4 GPUs).
    assert 0 < proact.bytes_moved <= bulk.bytes_moved


def test_cube_mesh_slower_than_nvswitch_at_8_gpus():
    """The switch gives every pair full bandwidth; the cube mesh splits
    bandwidth across four links and shares hops — same GPUs, same data,
    slower communication."""
    from repro.hw import PLATFORM_16X_VOLTA
    from repro.paradigms import ProactDecoupledParadigm
    from repro.workloads import PageRankWorkload

    workload = PageRankWorkload(num_vertices=4_000_000,
                                num_edges=120_000_000, iterations=2)
    cube = ProactDecoupledParadigm().execute(workload,
                                             PLATFORM_8X_VOLTA_CUBE)
    switch = ProactDecoupledParadigm().execute(
        workload, PLATFORM_16X_VOLTA.with_num_gpus(8))
    assert switch.runtime < cube.runtime
