"""Tests for profiler sweep telemetry (``capture(sweeps=True)``).

The contract under test (see ``docs/OBSERVABILITY.md``):

* a plain ``capture()`` around a sweep sees exactly the old behavior —
  candidate systems stay suppressed, no worker lanes, no decision log;
* ``capture(sweeps=True)`` adds per-worker activity lanes, a typed
  decision log whose measure+prune counts equal the grid size, and
  sweep latency histograms — while the sweep's *results* stay
  byte-identical to an untelemetered run;
* live progress (``Profiler(progress=...)``) works with or without any
  capture.
"""

import pytest

from repro.core import ParallelProfiler, Profiler
from repro.core.profiler import SweepProgress
from repro.hw import PLATFORM_4X_VOLTA
from repro.obs import capture
from repro.units import KiB, MiB
from tests.conftest import small_pagerank

SMALL_CHUNKS = (128 * KiB, 1 * MiB)
SMALL_THREADS = (1024, 4096)
#: inline contributes 1; each decoupled mechanism |chunks| x |threads|.
GRID = 1 + 2 * len(SMALL_CHUNKS) * len(SMALL_THREADS)


def _builder():
    return small_pagerank(iterations=2).phase_builder()


def _profiler(**kwargs):
    return Profiler(PLATFORM_4X_VOLTA, chunk_sizes=SMALL_CHUNKS,
                    thread_counts=SMALL_THREADS, **kwargs)


def _worker_lanes(observation):
    return sorted({channel
                   for channel in observation.ambient_tracer.channels()
                   if channel.startswith("sweep.worker")})


# ---------------------------------------------------------------------------
# Satellite 1: the suppression contract
# ---------------------------------------------------------------------------

def test_plain_capture_records_no_sweep_telemetry():
    """Without sweeps=True a capture sees exactly the old profiler
    output: the post-hoc ``profiler`` channel, no worker lanes, no
    decision events, no sweep histograms, no extra system tracers."""
    with capture() as observation:
        _profiler(search="exhaustive").profile(_builder())
    assert not observation.sweeps
    assert len(observation.decisions) == 0
    assert observation.ambient_tracer.count("decision") == 0
    assert _worker_lanes(observation) == []
    snapshot = observation.metrics.snapshot()
    assert not any(name.startswith("sweep_")
                   for name in snapshot["histograms"])
    # Candidate systems stayed suppressed: only the ambient lane exists.
    assert [label for label, _ in observation.traces] == ["capture"]
    # The old post-hoc summary is still published.
    assert observation.ambient_tracer.count("profiler") == GRID


def test_sweep_capture_keeps_candidates_suppressed():
    """sweeps=True observes the sweep, never the simulated candidates."""
    with capture(sweeps=True) as observation:
        _profiler(search="exhaustive").profile(_builder())
    assert [label for label, _ in observation.traces] == ["capture"]


# ---------------------------------------------------------------------------
# Serial telemetry
# ---------------------------------------------------------------------------

def test_serial_sweep_telemetry_decisions_and_identical_results():
    baseline = _profiler(search="exhaustive", prune=True).profile(_builder())
    with capture(sweeps=True) as observation:
        traced = _profiler(search="exhaustive",
                           prune=True).profile(_builder())

    assert traced.entries == baseline.entries  # byte-identical results
    decisions = observation.decisions
    assert decisions.count("measure") + decisions.count("prune") == GRID
    assert decisions.count("measure") == len(traced.entries)
    assert decisions.count("prune") == traced.pruned_configs
    assert decisions.count("floors") == 1
    # The decision log's final incumbent is the sweep's actual winner.
    assert decisions.final_incumbent().config == traced.best.config.label()
    # The decision stream is mirrored onto the trace channel.
    assert observation.ambient_tracer.count("decision") == len(decisions)

    assert _worker_lanes(observation) == ["sweep.worker0"]
    snapshot = observation.metrics.snapshot()
    histograms = snapshot["histograms"]
    assert histograms["sweep_task_ms{kind=measure}"]["count"] == \
        len(traced.entries)
    assert histograms["sweep_task_ms{kind=floor}"]["count"] == GRID
    assert any(name.startswith("sweep_batch_ms") for name in histograms)
    assert any(name.startswith("sweep_queue_wait_ms")
               for name in histograms)


def test_search_mode_telemetry_covers_the_grid():
    baseline = _profiler().search(_builder())
    with capture(sweeps=True) as observation:
        traced = _profiler().search(_builder())
    assert traced.entries == baseline.entries
    decisions = observation.decisions
    assert decisions.count("measure") + decisions.count("prune") == GRID
    assert decisions.count("rung") == 1
    assert decisions.final_incumbent().config == traced.best.config.label()


def test_coordinate_mode_telemetry_counts_planned_grid():
    with capture(sweeps=True) as observation:
        traced = _profiler().profile(_builder())
    decisions = observation.decisions
    # Coordinate search measures its reduced plan; nothing is pruned.
    assert decisions.count("measure") == len(traced.entries)
    assert decisions.count("prune") == 0


# ---------------------------------------------------------------------------
# Parallel telemetry
# ---------------------------------------------------------------------------

def test_parallel_sweep_telemetry_worker_lanes_and_identity():
    baseline = _profiler(search="exhaustive").profile(_builder())
    with capture(sweeps=True) as observation:
        traced = ParallelProfiler(
            PLATFORM_4X_VOLTA, chunk_sizes=SMALL_CHUNKS,
            thread_counts=SMALL_THREADS, search="exhaustive",
            jobs=2).profile(_builder())

    assert traced.entries == baseline.entries  # parallel == serial
    decisions = observation.decisions
    assert decisions.count("measure") + decisions.count("prune") == GRID
    lanes = _worker_lanes(observation)
    assert 1 <= len(lanes) <= 2  # one lane per worker process seen
    # Every worker lane carries task spans and batch spans.
    for lane in lanes:
        records = observation.ambient_tracer.channel(lane)
        assert all(record.is_span for record in records)
        labels = {record.label for record in records}
        assert "batch" in labels
        assert any(label.startswith(("measure ", "floor "))
                   for label in labels)
    # Chrome export keeps the worker lanes as their own tids.
    document = observation.chrome_trace()
    tids = {event["tid"] for event in document["traceEvents"]}
    assert set(lanes) <= tids


# ---------------------------------------------------------------------------
# Live progress
# ---------------------------------------------------------------------------

def test_progress_callback_without_capture():
    snapshots = []
    profiler = _profiler(search="exhaustive", prune=True,
                         progress=snapshots.append)
    result = profiler.profile(_builder())

    assert snapshots, "progress sink never called"
    assert all(isinstance(snapshot, SweepProgress)
               for snapshot in snapshots)
    final = snapshots[-1]
    assert final.stage == "done"
    assert final.total_configs == GRID
    assert final.decided == GRID
    assert final.measured == len(result.entries)
    assert final.pruned == result.pruned_configs
    assert final.prune_rate == pytest.approx(
        result.pruned_configs / GRID)
    assert final.configs_per_s > 0
    # Without capture(sweeps=True) there is no worker busy accounting.
    assert final.worker_utilization is None
    assert "configs" in final.render()


def test_progress_with_sweep_capture_reports_utilization():
    snapshots = []
    with capture(sweeps=True):
        _profiler(search="exhaustive",
                  progress=snapshots.append).profile(_builder())
    final = snapshots[-1]
    assert final.worker_utilization is not None
    assert 0.0 < final.worker_utilization <= 1.0
    assert final.eta_s == pytest.approx(0.0)


def test_progress_true_writes_stderr(capsys):
    profiler = _profiler(progress=True)
    profiler.profile(_builder())
    err = capsys.readouterr().err
    assert "[profile 4x_volta]" in err
    assert "done:" in err


def test_telemetry_off_has_no_side_channels():
    """No capture, no progress: the sweep records nothing anywhere."""
    result = _profiler(search="exhaustive").profile(_builder())
    assert result.entries  # sanity


# ---------------------------------------------------------------------------
# Session facade
# ---------------------------------------------------------------------------

def test_session_sweeps_profile_and_report(tmp_path):
    from repro.api import Session

    session = Session(PLATFORM_4X_VOLTA, sweeps=True)
    result = session.profile(small_pagerank(iterations=2),
                             strategy="exhaustive",
                             chunk_sizes=SMALL_CHUNKS,
                             thread_counts=SMALL_THREADS)
    decisions = session.decisions
    assert decisions is not None
    assert decisions.count("measure") == len(result.entries) == GRID
    assert "sweeps" in repr(session)

    markdown = tmp_path / "report.md"
    session.save_report(str(markdown))
    text = markdown.read_text()
    assert "Sweep decisions" in text
    assert result.best.config.label() in text

    as_json = tmp_path / "report.json"
    session.save_report(str(as_json))
    import json
    report = json.loads(as_json.read_text())
    assert report["experiments"][0]["decisions"]["counts"]["measure"] == GRID


def test_session_without_observation_has_no_decisions():
    from repro.api import Session
    from repro.errors import ConfigurationError

    session = Session(PLATFORM_4X_VOLTA)
    assert session.decisions is None
    with pytest.raises(ConfigurationError):
        session.save_report("unused.md")
