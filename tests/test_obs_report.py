"""Unit tests for the run-report builder and the bench-trend helper."""

import json

import pytest

from repro.obs.bench_trend import load_bench_results, main, trend_table
from repro.obs.report import (
    build_run_report,
    histogram_rows,
    render_markdown,
    summarize_decisions,
    summarize_trace,
    write_report,
)

# ---------------------------------------------------------------------------
# Summaries
# ---------------------------------------------------------------------------

_TRACE = {"traceEvents": [
    {"ph": "M", "pid": 0, "tid": 0, "name": "process_name"},
    {"ph": "X", "pid": 0, "tid": "capture", "name": "run"},
    {"ph": "X", "pid": 0, "tid": "sweep.worker0", "name": "batch"},
    {"ph": "X", "pid": 0, "tid": "sweep.worker1", "name": "batch"},
    {"ph": "i", "pid": 0, "tid": "decision", "cat": "decision",
     "name": "measure"},
    {"ph": "i", "pid": 0, "tid": "decision", "cat": "decision",
     "name": "prune"},
]}


def test_summarize_trace_counts_lanes_and_decisions():
    summary = summarize_trace(_TRACE)
    assert summary["events"] == 5  # metadata rows excluded
    assert summary["spans"] == 3
    assert summary["lanes"] == 4
    assert summary["worker_lanes"] == 2
    assert summary["decision_events"] == 2


def test_summarize_trace_handles_missing_document():
    assert summarize_trace(None)["events"] == 0
    assert summarize_trace({})["worker_lanes"] == 0


def test_summarize_decisions_counts_and_incumbent():
    events = [
        {"kind": "floors", "config": None, "payload": {}},
        {"kind": "measure", "config": "a", "payload": {}},
        {"kind": "incumbent", "config": "a", "payload": {"runtime": 2.0}},
        {"kind": "prune", "config": "b", "payload": {}},
        {"kind": "measure", "config": "c", "payload": {}},
        {"kind": "incumbent", "config": "c", "payload": {"runtime": 1.0}},
    ]
    summary = summarize_decisions(events)
    assert summary["events"] == 6
    assert summary["counts"] == {"floors": 1, "measure": 2,
                                 "incumbent": 2, "prune": 1}
    assert summary["decided"] == 3
    assert summary["prune_rate"] == pytest.approx(1 / 3)
    # Last incumbent wins.
    assert summary["best_config"] == "c"
    assert summary["best_runtime"] == 1.0


def test_summarize_decisions_empty():
    assert summarize_decisions(None) == {"events": 0, "counts": {}}
    assert summarize_decisions([]) == {"events": 0, "counts": {}}


def test_histogram_rows_sorted_and_projected():
    metrics = {"histograms": {
        "b{x=1}": {"count": 2, "mean": 1.0, "p50": 1.0, "p90": 1.0,
                   "p99": 1.0, "max": 1.5, "min": 0.5},
        "a": {"count": 1, "mean": 3.0, "p50": 3.0, "p90": 3.0,
              "p99": 3.0, "max": 3.0},
    }}
    rows = histogram_rows(metrics)
    assert [row["series"] for row in rows] == ["a", "b{x=1}"]
    assert set(rows[0]) == {"series", "count", "mean", "p50", "p90",
                            "p99", "max"}
    assert histogram_rows(None) == []


# ---------------------------------------------------------------------------
# Report assembly and rendering
# ---------------------------------------------------------------------------

def _experiments():
    return [
        {"name": "ok", "label": "OK", "elapsed": 1.5, "rows": 3,
         "scalars": {"speedup": 2.5}, "trace": _TRACE,
         "decisions": [
             {"kind": "measure", "config": "a", "payload": {}},
             {"kind": "incumbent", "config": "a",
              "payload": {"runtime": 0.25}},
         ],
         "metrics": {"histograms": {"sweep_task_ms{kind=measure}": {
             "count": 9, "mean": 1.0, "p50": 1.0, "p90": 1.2,
             "p99": 1.3, "max": 1.4}}}},
        {"name": "bad", "label": "Bad", "elapsed": 0.5, "rows": 0,
         "error": "boom"},
    ]


def test_build_run_report_totals_and_failures():
    report = build_run_report(_experiments(), title="T",
                              suite={"quick": True})
    assert report["title"] == "T"
    assert report["totals"] == {"experiments": 2, "failures": 1,
                                "rows": 3, "elapsed_s": 2.0}
    assert report["failed"] == ["bad"]
    assert report["suite"] == {"quick": True}
    ok = report["experiments"][0]
    assert ok["decisions"]["best_config"] == "a"
    assert ok["trace"]["worker_lanes"] == 2
    assert ok["histograms"][0]["series"] == "sweep_task_ms{kind=measure}"


def test_render_markdown_sections():
    text = render_markdown(build_run_report(_experiments(), title="T"))
    assert text.startswith("# T")
    assert "**Failed:** bad" in text
    assert "## OK" in text
    assert "### Sweep decisions" in text
    assert "Winner: `a` (0.25s)" in text
    assert "### Latency histograms" in text
    assert "sweep_task_ms{kind=measure}" in text
    assert "FAILED: boom" in text
    assert "2 worker lanes" in text


def test_write_report_json_and_markdown(tmp_path):
    report = build_run_report(_experiments(), title="T")
    json_path = tmp_path / "r.json"
    write_report(json_path, report)
    assert json.loads(json_path.read_text())["totals"]["experiments"] == 2
    md_path = tmp_path / "r.md"
    write_report(md_path, report)
    assert md_path.read_text().startswith("# T")


# ---------------------------------------------------------------------------
# bench_trend
# ---------------------------------------------------------------------------

def _write_bench(directory, name, payload):
    (directory / f"BENCH_{name}.json").write_text(json.dumps(payload))


def test_load_bench_results_sorted_and_tolerant(tmp_path):
    _write_bench(tmp_path, "zeta", {"speedup": 2.0})
    _write_bench(tmp_path, "alpha", {"serial_s": 1.0})
    (tmp_path / "BENCH_broken.json").write_text("{not json")
    (tmp_path / "OTHER.json").write_text("{}")  # ignored: wrong prefix
    results = load_bench_results(tmp_path)
    assert [r["benchmark"] for r in results] == ["alpha", "broken", "zeta"]
    assert "error" in results[1]
    assert results[0]["_file"] == "BENCH_alpha.json"


def test_trend_table_headline_and_all_columns(tmp_path):
    _write_bench(tmp_path, "a", {"speedup": 2.0, "gate_enforced": False,
                                 "custom_scalar": 7})
    results = load_bench_results(tmp_path)
    table = trend_table(results)
    assert "benchmark" in table and "speedup" in table
    assert "2" in table and "no" in table
    assert "custom_scalar" not in table  # not a headline column
    assert "custom_scalar" in trend_table(results, show_all=True)


def test_bench_trend_main(tmp_path, capsys):
    _write_bench(tmp_path, "a", {"speedup": 1.5})
    out_json = tmp_path / "trend.json"
    assert main([str(tmp_path), "--json", str(out_json)]) == 0
    assert "speedup" in capsys.readouterr().out
    assert json.loads(out_json.read_text())["benchmarks"][0][
        "benchmark"] == "a"


def test_bench_trend_main_empty_directory_fails(tmp_path, capsys):
    assert main([str(tmp_path)]) == 1
    assert "no BENCH_" in capsys.readouterr().err
