"""Tests for the P2P-loads paradigm (Figure 1(b))."""

import pytest

from repro.hw import PLATFORM_4X_KEPLER, PLATFORM_4X_VOLTA
from repro.paradigms import (
    BulkMemcpyParadigm,
    P2pLoadParadigm,
    ProactDecoupledParadigm,
)
from repro.units import MiB
from repro.workloads import MicroBenchmark, PageRankWorkload


def micro():
    return MicroBenchmark(data_bytes=32 * MiB, consumer_phase=True,
                          spatial_locality=0.1)


def test_p2p_loads_move_data_at_sector_granularity():
    result = P2pLoadParadigm().execute(micro(), PLATFORM_4X_VOLTA)
    assert result.bytes_moved == 3 * 32 * MiB
    # 32 B sectors on NVLink: 32 / (32 + 32) = 50 % goodput.
    assert result.interconnect_efficiency == pytest.approx(0.5, abs=0.02)


def test_p2p_loads_overlap_beats_bulk_on_tuned_micro():
    workload = micro()
    loads = P2pLoadParadigm().execute(workload, PLATFORM_4X_VOLTA)
    bulk = BulkMemcpyParadigm().execute(workload, PLATFORM_4X_VOLTA)
    assert loads.runtime < bulk.runtime


def test_p2p_loads_lose_to_decoupled_proact():
    workload = PageRankWorkload(num_vertices=4_000_000,
                                num_edges=120_000_000, iterations=3)
    loads = P2pLoadParadigm().execute(workload, PLATFORM_4X_VOLTA)
    proact = ProactDecoupledParadigm().execute(workload, PLATFORM_4X_VOLTA)
    assert proact.runtime < loads.runtime


def test_p2p_loads_stall_consumer_kernels():
    """The consuming phase stretches beyond its compute time."""
    workload = micro()
    loads = P2pLoadParadigm().execute(workload, PLATFORM_4X_VOLTA)
    # Phase 2 (consume) is longer than phase 1 (produce, no incoming
    # reads) even though both kernels have identical compute.
    assert loads.phase_durations[1] > loads.phase_durations[0] * 1.1


def test_p2p_loads_worse_on_high_latency_interconnect():
    """PCIe's latency throttles outstanding remote loads harder."""
    workload = micro()
    volta = P2pLoadParadigm().execute(workload, PLATFORM_4X_VOLTA)
    kepler = P2pLoadParadigm().execute(workload, PLATFORM_4X_KEPLER)
    # Not directly comparable in absolute terms, but the read throttle
    # must have engaged: PCIe read cap is 16 KiB / 1.9 us ~ 8.6 GB/s,
    # comparable to its link rate; sanity-check both completed.
    assert volta.runtime > 0 and kepler.runtime > 0
    assert kepler.runtime > volta.runtime
