"""Integration tests for the PROACT phase executor and transfer agents."""

import pytest

from repro.core import (
    CdpAgent,
    GpuPhaseWork,
    MECH_CDP,
    MECH_INLINE,
    MECH_POLLING,
    PollingAgent,
    ProactConfig,
    ProactPhaseExecutor,
    inline_access_size,
    store_issue_work,
    tracking_overhead,
)
from repro.errors import ProactError
from repro.hw import PLATFORM_4X_KEPLER, PLATFORM_4X_VOLTA
from repro.runtime import KernelSpec, System
from repro.units import KiB, MiB
from tests.conftest import one_producer_phase, run_phase, volta_system


# ---------------------------------------------------------------------------
# Config
# ---------------------------------------------------------------------------

def test_config_labels_match_table2_notation():
    assert ProactConfig(MECH_INLINE, 4 * KiB, 32).label() == "I"
    assert (ProactConfig(MECH_POLLING, 128 * KiB, 2048).label()
            == "D 128kB 2048 Poll")
    assert (ProactConfig(MECH_CDP, 16 * KiB, 256).label()
            == "D 16kB 256 CDP")
    assert (ProactConfig(MECH_POLLING, 1 * MiB, 4096).label()
            == "D 1MB 4096 Poll")


def test_config_validation():
    with pytest.raises(Exception):
        ProactConfig("dma", 4 * KiB, 32)
    with pytest.raises(Exception):
        ProactConfig(MECH_POLLING, 0, 32)
    with pytest.raises(Exception):
        ProactConfig(MECH_POLLING, 4 * KiB, 0)


# ---------------------------------------------------------------------------
# Inline helpers
# ---------------------------------------------------------------------------

def test_inline_access_size_bounds():
    assert inline_access_size(8, 1.0) == 128
    assert inline_access_size(8, 0.0) == 8
    assert 8 < inline_access_size(8, 0.5) < 128
    assert inline_access_size(256, 0.5) == 256  # already coarse


def test_inline_access_size_validation():
    with pytest.raises(ProactError):
        inline_access_size(0, 0.5)
    with pytest.raises(ProactError):
        inline_access_size(8, 1.5)


def test_store_issue_work():
    assert store_issue_work(1000, 3, 1e9) == pytest.approx(3e-6)
    assert store_issue_work(0, 3, 1e9) == 0.0


# ---------------------------------------------------------------------------
# Executor: decoupled transfers overlap with compute
# ---------------------------------------------------------------------------

def test_polling_phase_hides_most_transfer_time():
    # 32 MiB to 3 peers over NVLink2 (50 GB/s per peer) ~ 0.67 ms of
    # transfer under a 2 ms kernel: nearly everything should hide.
    system = volta_system()
    config = ProactConfig(MECH_POLLING, 1 * MiB, 2048)
    result = run_phase(system, config, one_producer_phase(system))
    assert result.total_bytes_sent == 3 * 32 * MiB
    assert result.exposed_transfer_time < 0.3e-3
    # Kernel (2 ms) + tracking overhead + polling steal + small tail.
    assert result.duration < 2.9e-3


def test_decoupled_instrumentation_slows_kernel():
    def duration(instrument):
        system = volta_system()
        config = ProactConfig(MECH_POLLING, 1 * MiB, 2048)
        works = one_producer_phase(system, num_ctas=50_000)
        result = run_phase(system, config, works, instrument=instrument)
        return result.duration

    overhead = tracking_overhead(PLATFORM_4X_VOLTA.gpu, 50_000)
    assert duration(True) - duration(False) == pytest.approx(
        overhead, rel=0.2)


def test_elide_transfers_keeps_overheads_but_moves_no_bytes():
    system = volta_system()
    config = ProactConfig(MECH_POLLING, 1 * MiB, 2048)
    result = run_phase(system, config, one_producer_phase(system),
                       elide_transfers=True)
    assert system.fabric.total_goodput_bytes() == 0
    # Stats still record what would have moved.
    assert result.total_bytes_sent == 3 * 32 * MiB


def test_cdp_small_chunks_are_initiation_bound():
    def duration(chunk_size):
        system = volta_system()
        config = ProactConfig(MECH_CDP, chunk_size, 2048)
        return run_phase(system, config,
                         one_producer_phase(system, region_bytes=8 * MiB)
                         ).duration

    # 8 MiB at 16 KiB chunks = 512 CDP launches x 26 us >> the kernel;
    # at 1 MiB chunks only 8 launches.
    assert duration(16 * KiB) > 2.5 * duration(1 * MiB)


def test_huge_chunks_leave_tail_transfers():
    system = volta_system()
    # One single chunk: ready only when the kernel finishes, so the whole
    # transfer is exposed (the paper's tail-transfer-bound region).
    config = ProactConfig(MECH_POLLING, 32 * MiB, 2048)
    result = run_phase(system, config, one_producer_phase(system))
    assert result.exposed_transfer_time > 0.5e-3


def test_polling_agent_steals_compute_on_kepler():
    def kernel_end(mechanism):
        system = System(PLATFORM_4X_KEPLER)
        config = ProactConfig(mechanism, 1 * MiB, 256)
        works = one_producer_phase(
            system, region_bytes=4 * MiB,
            flops=system.gpus[0].spec.flops * 5e-3)
        result = run_phase(system, config, works, elide_transfers=True)
        return result.last_kernel_end

    # Kepler's polling tax slows the compute kernel noticeably vs CDP.
    assert kernel_end(MECH_POLLING) > 1.15 * kernel_end(MECH_CDP)


def test_inline_phase_moves_data_at_inline_granularity():
    system = volta_system()
    config = ProactConfig(MECH_INLINE, 1 * MiB, 2048)
    works = one_producer_phase(system, region_bytes=16 * MiB,
                               store_size=8, spatial_locality=0.0)
    result = run_phase(system, config, works)
    assert result.total_bytes_sent == 3 * 16 * MiB
    # 8-byte NVLink stores: wire bytes blow up by ~6x.
    assert system.fabric.total_wire_bytes() > 4 * (3 * 16 * MiB)


def test_inline_with_good_locality_is_efficient():
    def wire_bytes(locality):
        system = volta_system()
        config = ProactConfig(MECH_INLINE, 1 * MiB, 2048)
        works = one_producer_phase(system, region_bytes=16 * MiB,
                                   store_size=8, spatial_locality=locality)
        run_phase(system, config, works)
        return system.fabric.total_wire_bytes()

    assert wire_bytes(0.0) > 3 * wire_bytes(1.0)


def test_phase_gpu_count_mismatch_rejected():
    system = volta_system()
    executor = ProactPhaseExecutor(
        system, ProactConfig(MECH_POLLING, 1 * MiB, 2048))
    with pytest.raises(ProactError):
        executor.execute([])


def test_compute_only_phase_runs_kernels_in_parallel():
    system = volta_system()
    config = ProactConfig(MECH_POLLING, 1 * MiB, 2048)
    flops = system.gpus[0].spec.flops * 1e-3
    works = [GpuPhaseWork(kernel=KernelSpec("k", flops, 0, 1024))
             for _ in range(4)]
    result = run_phase(system, config, works)
    assert result.duration == pytest.approx(
        1e-3 + system.spec.gpu.kernel_launch_latency, rel=1e-6)
    assert result.total_bytes_sent == 0


# ---------------------------------------------------------------------------
# Agents in isolation
# ---------------------------------------------------------------------------

def test_polling_agent_requires_start_before_chunks():
    system = volta_system()
    agent = PollingAgent(system, 0, ProactConfig(MECH_POLLING, 64 * KiB, 512),
                         destinations=[1, 2, 3])
    with pytest.raises(ProactError):
        agent.chunk_ready(64 * KiB)
    agent.start()
    assert agent.is_resident
    agent.chunk_ready(64 * KiB)
    done = agent.close()
    system.run(until=done)
    agent.stop()
    assert not agent.is_resident
    assert agent.stats.chunks_sent == 1
    assert agent.stats.bytes_sent == 3 * 64 * KiB


def test_agent_validation():
    system = volta_system()
    config = ProactConfig(MECH_CDP, 64 * KiB, 512)
    with pytest.raises(ProactError):
        CdpAgent(system, 0, config, destinations=[])
    with pytest.raises(ProactError):
        CdpAgent(system, 0, config, destinations=[0, 1])
    agent = CdpAgent(system, 0, config, destinations=[1])
    with pytest.raises(ProactError):
        agent.chunk_ready(0)
    agent.close()
    with pytest.raises(ProactError):
        agent.chunk_ready(1024)


def test_cdp_agent_counts_launches():
    system = volta_system()
    agent = CdpAgent(system, 0, ProactConfig(MECH_CDP, 64 * KiB, 512),
                     destinations=[1, 2, 3])
    for _ in range(5):
        agent.chunk_ready(64 * KiB)
    system.run(until=agent.close())
    assert system.devices[0].cdp_launch_count == 5
    assert agent.stats.sends_issued == 15


def test_more_transfer_threads_speed_up_drain():
    def drain_time(threads):
        system = volta_system()
        agent = PollingAgent(
            system, 0, ProactConfig(MECH_POLLING, 1 * MiB, threads),
            destinations=[1, 2, 3])
        agent.start()
        for _ in range(32):
            agent.chunk_ready(1 * MiB)
        system.run(until=agent.close())
        agent.stop()
        return system.now

    # 32 threads (~2.9 GB/s copy rate) starve NVLink2; 4096 saturate it.
    assert drain_time(32) > 5 * drain_time(4096)


def test_error_raised_mid_phase_carries_simulation_time():
    """A process dying while a phase is in flight surfaces through
    System.run with the simulation time of the raise attached."""
    system = volta_system()
    executor = ProactPhaseExecutor(
        system, ProactConfig(MECH_POLLING, 256 * KiB, 2048))
    works = one_producer_phase(system, region_bytes=8 * MiB)

    def saboteur(engine):
        yield engine.timeout(1e-3)
        raise RuntimeError("device lost")

    system.engine.process(saboteur(system.engine))
    with pytest.raises(RuntimeError, match="device lost") as err:
        system.run(until=executor.execute(works))
    assert err.value.sim_time == pytest.approx(1e-3)
    assert any("simulation time" in note
               for note in getattr(err.value, "__notes__", []))
