"""Property-based conservation and invariant tests across the stack.

These protect the simulator's bookkeeping: bytes are neither created nor
destroyed, time never runs backwards, and the executor's reported spans
nest correctly.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    GpuPhaseWork,
    MECH_CDP,
    MECH_HARDWARE,
    MECH_INLINE,
    MECH_POLLING,
    ProactConfig,
    ProactPhaseExecutor,
)
from repro.hw import PLATFORM_4X_PASCAL, PLATFORM_4X_VOLTA
from repro.interconnect import NVLINK2, Fabric
from repro.runtime import KernelSpec, System
from repro.sim import Engine
from repro.units import KiB, MiB

fast_settings = settings(
    max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])


# ---------------------------------------------------------------------------
# Fabric conservation
# ---------------------------------------------------------------------------

@fast_settings
@given(payloads=st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),
              st.integers(min_value=0, max_value=3),
              st.integers(min_value=1, max_value=4 * MiB),
              st.sampled_from([4, 32, 128, 256])),
    min_size=1, max_size=8))
def test_fabric_goodput_conservation(payloads):
    """Total goodput equals total payload sent, whatever the mix."""
    engine = Engine()
    fabric = Fabric(engine, NVLINK2, num_gpus=4)
    sends = []
    expected = 0
    for src, dst, nbytes, access in payloads:
        if src == dst:
            continue
        sends.append(fabric.send(src, dst, nbytes, access))
        expected += nbytes
    if sends:
        engine.run(until=engine.all_of(sends))
    assert fabric.total_goodput_bytes() == expected
    assert fabric.total_wire_bytes() >= expected


@fast_settings
@given(nbytes=st.integers(min_value=1, max_value=8 * MiB),
       access=st.sampled_from([4, 16, 64, 256]))
def test_transfer_duration_lower_bounded_by_wire_math(nbytes, access):
    """A transfer can never beat its analytic wire time."""
    engine = Engine()
    fabric = Fabric(engine, NVLINK2, num_gpus=4)
    receipt = engine.run(until=fabric.send(0, 1, nbytes, access))
    fmt = NVLINK2.fmt
    wire = fmt.message_wire_bytes(nbytes, access)
    analytic = wire / fabric.peak_p2p_bandwidth(0, 1) + NVLINK2.latency
    assert receipt.duration >= analytic * 0.999


# ---------------------------------------------------------------------------
# Executor invariants across all mechanisms
# ---------------------------------------------------------------------------

MECHANISMS = (MECH_INLINE, MECH_POLLING, MECH_CDP, MECH_HARDWARE)


@fast_settings
@given(mechanism=st.sampled_from(MECHANISMS),
       region_mib=st.integers(min_value=1, max_value=16),
       chunk_kib=st.sampled_from([64, 256, 1024]),
       ncta=st.integers(min_value=64, max_value=20_000))
def test_phase_spans_nest(mechanism, region_mib, chunk_kib, ncta):
    """kernel_start <= kernel_end <= transfers_end <= phase end, and
    the producer's bytes match region x destinations."""
    system = System(PLATFORM_4X_VOLTA)
    gpu = system.gpus[0]
    config = ProactConfig(mechanism, chunk_kib * KiB, 2048)
    executor = ProactPhaseExecutor(system, config)
    works = [GpuPhaseWork(
        kernel=KernelSpec("p", gpu.spec.flops * 1e-3, 0, ncta),
        region_bytes=region_mib * MiB)] + [
        GpuPhaseWork(kernel=KernelSpec("c", gpu.spec.flops * 1e-3, 0,
                                       ncta))] * 3
    result = system.run(until=executor.execute(works))
    producer = result.outcomes[0]
    assert (producer.kernel_start <= producer.kernel_end
            <= producer.transfers_end <= result.end)
    assert producer.bytes_sent == region_mib * MiB * 3
    assert result.duration > 0
    # All goodput on the fabric came from the producer.
    assert system.fabric.total_goodput_bytes() == producer.bytes_sent


@fast_settings
@given(mechanism=st.sampled_from(MECHANISMS))
def test_elide_never_slower_than_real_transfers(mechanism):
    """Removing the wire time can only shorten the phase."""
    def duration(elide):
        system = System(PLATFORM_4X_PASCAL)
        gpu = system.gpus[0]
        config = ProactConfig(mechanism, 256 * KiB, 2048)
        executor = ProactPhaseExecutor(system, config,
                                       elide_transfers=elide)
        works = [GpuPhaseWork(
            kernel=KernelSpec("p", gpu.spec.flops * 1e-3, 0, 4096),
            region_bytes=8 * MiB)] + [
            GpuPhaseWork(kernel=KernelSpec("c", gpu.spec.flops * 1e-3,
                                           0, 4096))] * 3
        return system.run(until=executor.execute(works)).duration

    assert duration(True) <= duration(False) * 1.001


@fast_settings
@given(mechanism=st.sampled_from((MECH_POLLING, MECH_CDP)),
       chunk_kib=st.sampled_from([16, 128, 1024]))
def test_hardware_never_slower_than_software(mechanism, chunk_kib):
    def duration(mech):
        system = System(PLATFORM_4X_VOLTA)
        gpu = system.gpus[0]
        executor = ProactPhaseExecutor(
            system, ProactConfig(mech, chunk_kib * KiB, 2048))
        works = [GpuPhaseWork(
            kernel=KernelSpec("p", gpu.spec.flops * 1e-3, 0, 8192),
            region_bytes=8 * MiB)] + [
            GpuPhaseWork(kernel=KernelSpec("c", gpu.spec.flops * 1e-3,
                                           0, 8192))] * 3
        return system.run(until=executor.execute(works)).duration

    assert duration(MECH_HARDWARE) <= duration(mechanism) * 1.001
