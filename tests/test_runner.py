"""Tests for the experiment registry and the parallel suite runner."""

import io
import json

import pytest

from repro.errors import ProactError
from repro.experiments import runner
from repro.experiments.registry import (
    REGISTRY,
    ExperimentContext,
    ExperimentResult,
    ProfilePolicy,
    experiment_names,
    get_spec,
    run_experiment,
    select_specs,
)
from repro.experiments.report import TextTable

#: Cheap registry entries used to exercise the runner end to end.
FAST = ["table1", "fig2"]


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

def test_registry_covers_every_experiment_module():
    names = experiment_names()
    assert names[0] == "table1"  # canonical serial order preserved
    assert len(names) == len(set(names)) == len(REGISTRY) == 18
    for expected in ("fig1", "fig7", "table2", "ablations", "ablation",
                     "sensitivity",
                     "utilization", "collectives", "cluster", "autotune",
                     "service"):
        assert expected in names


def test_registry_rejects_unknown_names():
    with pytest.raises(ProactError):
        get_spec("fig99")
    with pytest.raises(ProactError):
        select_specs(only=["table1", "nope"])


def test_select_specs_preserves_registry_order():
    specs = select_specs(only=["fig2", "table1"])  # order given is ignored
    assert [spec.name for spec in specs] == ["table1", "fig2"]


def test_experiment_context_scales_micro_bytes():
    assert (ExperimentContext(quick=True).micro_bytes
            < ExperimentContext(quick=False).micro_bytes)


def test_experiment_result_build_counts_rows():
    table = TextTable("Demo", ["a", "b"])
    table.add_row(1, 2)
    table.add_row(3, 4)
    result = ExperimentResult.build("demo", "Demo", [table, table],
                                    {"key": 1})
    assert result.rows == 4
    assert result.tables[0].startswith("Demo")
    payload = result.to_dict()
    assert payload["name"] == "demo"
    assert payload["rows"] == 4
    assert payload["scalars"] == {"key": 1.0}
    assert "tables" not in payload  # JSON stays lean


def test_run_experiment_stamps_elapsed():
    result = run_experiment("table1", ExperimentContext(quick=True))
    assert result.name == "table1"
    assert result.label == "Table I"
    assert result.elapsed > 0
    assert result.rows == 4
    assert result.scalars["num_platforms"] == 4.0


def test_every_spec_resolves_to_an_entry_point():
    for spec in REGISTRY:
        import importlib
        module = importlib.import_module(spec.module)
        assert callable(module.experiment), spec.name


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------

def test_run_all_serial_output_and_results():
    buffer = io.StringIO()
    results = runner.run_all(quick=True, only=FAST, out=buffer)
    text = buffer.getvalue()
    assert [r.name for r in results] == FAST
    assert "Table I" in text
    assert "[Table I completed in" in text
    assert "[Figure 2 completed in" in text
    for result in results:
        assert result.rows > 0
        assert result.scalars


def test_run_all_parallel_matches_serial_byte_for_byte():
    # Experiments are pure functions of the context, so four worker
    # processes must print exactly the tables the serial runner prints.
    serial_buf, parallel_buf = io.StringIO(), io.StringIO()
    serial = runner.run_all(quick=True, only=FAST + ["fig1"],
                            out=serial_buf)
    parallel = runner.run_all(quick=True, only=FAST + ["fig1"],
                              out=parallel_buf, jobs=4)
    assert [r.name for r in serial] == [r.name for r in parallel]
    assert [r.tables for r in serial] == [r.tables for r in parallel]
    assert [r.rows for r in serial] == [r.rows for r in parallel]
    assert [r.scalars for r in serial] == [r.scalars for r in parallel]

    def tables_only(text):
        return [line for line in text.splitlines()
                if not line.startswith("[")]  # drop wall-time lines

    assert tables_only(serial_buf.getvalue()) == tables_only(
        parallel_buf.getvalue())


def test_run_all_writes_results_json(tmp_path):
    path = tmp_path / "results.json"
    buffer = io.StringIO()
    results = runner.run_all(quick=True, only=FAST, out=buffer,
                             json_path=str(path))
    payload = json.loads(path.read_text())
    assert payload["suite"] == "repro-experiments"
    assert payload["quick"] is True
    assert payload["jobs"] == 1
    assert payload["total_elapsed"] > 0
    assert len(payload["experiments"]) == len(results)
    for entry, result in zip(payload["experiments"], results):
        assert entry["name"] == result.name
        assert entry["label"] == result.label
        assert entry["rows"] == result.rows
        assert entry["elapsed"] == result.elapsed
        assert entry["scalars"] == result.scalars


def test_run_all_observability_outputs(tmp_path):
    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.json"
    json_path = tmp_path / "results.json"
    buffer = io.StringIO()
    results = runner.run_all(quick=True, only=["fig1"], out=buffer,
                             json_path=str(json_path),
                             trace_path=str(trace_path),
                             metrics_path=str(metrics_path))

    trace = json.loads(trace_path.read_text())
    events = trace["traceEvents"]
    assert events, "observed run must produce trace events"
    assert all({"ph", "ts", "pid"} <= set(e) for e in events)
    assert any(e["ph"] == "X" and e["tid"] == "kernel" for e in events)

    metrics = json.loads(metrics_path.read_text())
    assert metrics["suite"] == "repro-experiments"
    assert "fig1" in metrics["experiments"]
    assert metrics["experiments"]["fig1"]["counters"]

    # Captured metrics also ride along in the results.json schema.
    payload = json.loads(json_path.read_text())
    assert payload["experiments"][0]["metrics"]["counters"]
    assert results[0].trace is not None


def test_run_all_observability_matches_unobserved_output(tmp_path):
    plain_buf, observed_buf = io.StringIO(), io.StringIO()
    runner.run_all(quick=True, only=FAST, out=plain_buf)
    runner.run_all(quick=True, only=FAST, out=observed_buf,
                   trace_path=str(tmp_path / "trace.json"))

    def tables_only(text):
        return [line for line in text.splitlines()
                if not line.startswith("[")]

    assert tables_only(plain_buf.getvalue()) == tables_only(
        observed_buf.getvalue())


def test_run_all_parallel_observability(tmp_path):
    # Trace/metrics documents must survive the trip through worker
    # processes and merge into valid files.
    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.json"
    runner.run_all(quick=True, only=FAST + ["fig1"], out=io.StringIO(),
                   jobs=3, trace_path=str(trace_path),
                   metrics_path=str(metrics_path))
    trace = json.loads(trace_path.read_text())
    assert trace["traceEvents"]
    metrics = json.loads(metrics_path.read_text())
    assert set(metrics["experiments"]) == set(FAST + ["fig1"])


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_list(capsys):
    assert runner.main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in experiment_names():
        assert name in out


def test_cli_only_and_json(tmp_path, capsys):
    path = tmp_path / "results.json"
    assert runner.main(["--quick", "--only", "table1",
                        "--json", str(path)]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    payload = json.loads(path.read_text())
    assert [e["name"] for e in payload["experiments"]] == ["table1"]


def test_cli_trace_and_metrics_flags(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.json"
    assert runner.main(["--quick", "--only", "fig1",
                        "--trace", str(trace_path),
                        "--metrics", str(metrics_path)]) == 0
    assert "Figure 1" in capsys.readouterr().out
    assert json.loads(trace_path.read_text())["traceEvents"]
    assert "fig1" in json.loads(metrics_path.read_text())["experiments"]


def test_cli_rejects_bad_arguments():
    with pytest.raises(SystemExit):
        runner.main(["--only", "fig99"])
    with pytest.raises(SystemExit):
        runner.main(["--jobs", "0", "--only", "table1"])
    with pytest.raises(SystemExit):
        runner.main(["--quick", "--full"])
    with pytest.raises(SystemExit):
        runner.main(["--profile-strategy", "random", "--only", "table1"])
    with pytest.raises(SystemExit):
        runner.main(["--profile-jobs", "0", "--only", "table1"])


def test_cli_profile_strategy_and_jobs_reach_the_context(monkeypatch):
    seen = {}

    def fake_run_all(**kwargs):
        seen.update(kwargs)
        return [ExperimentResult(name="a", label="A", tables=["t"], rows=1)]

    monkeypatch.setattr(runner, "run_all", fake_run_all)
    assert runner.main(["--only", "table2", "--profile-strategy", "search",
                        "--profile-jobs", "2"]) == 0
    assert seen["profile"] == ProfilePolicy(strategy="search", jobs=2)


def test_context_carries_profile_strategy_defaults():
    ctx = ExperimentContext(quick=True)
    assert ctx.profile == ProfilePolicy()
    assert ctx.profile_strategy == "coordinate"
    assert ctx.profile_jobs == 1
    assert ctx.sweeps is False


# ---------------------------------------------------------------------------
# --report and --sweep-telemetry
# ---------------------------------------------------------------------------

def test_run_all_writes_markdown_report(tmp_path):
    report_path = tmp_path / "report.md"
    results = runner.run_all(quick=True, only=["table1"],
                             out=io.StringIO(),
                             report_path=str(report_path))
    text = report_path.read_text()
    assert text.startswith("# repro experiment run")
    assert "Table I" in text
    # --report implies observation: the trace travelled back.
    assert results[0].trace is not None


def test_run_all_writes_json_report(tmp_path):
    report_path = tmp_path / "report.json"
    runner.run_all(quick=True, only=["table1"], out=io.StringIO(),
                   report_path=str(report_path))
    report = json.loads(report_path.read_text())
    assert report["totals"]["experiments"] == 1
    assert report["totals"]["failures"] == 0
    assert report["experiments"][0]["name"] == "table1"
    assert report["experiments"][0]["trace"]["events"] >= 0
    assert report["suite"]["quick"] is True


def test_sweep_telemetry_context_carries_decisions(monkeypatch):
    """A sweeping experiment run under ctx.sweeps ships its decision
    log back on the (picklable) result and into the run report."""
    def experiment(ctx):
        from repro.core import Profiler
        from repro.hw import PLATFORM_4X_VOLTA
        from repro.units import KiB
        from tests.conftest import small_pagerank

        profiler = Profiler(PLATFORM_4X_VOLTA,
                            chunk_sizes=(256 * KiB,),
                            thread_counts=(2048,),
                            search="exhaustive")
        profile = profiler.profile(small_pagerank(iterations=1)
                                   .phase_builder())
        table = TextTable("Sweep", ["configs"])
        table.add_row(len(profile.entries))
        return ExperimentResult.build("sweepy", "Sweepy", [table], {})

    _register_fake(monkeypatch, "sweepy", experiment)
    result = run_experiment("sweepy",
                            ExperimentContext(quick=True, observe=True,
                                              sweeps=True))
    assert result.error is None
    assert result.decisions, "decision log must travel on the result"
    kinds = {event["kind"] for event in result.decisions}
    assert "measure" in kinds
    assert result.to_dict()["decisions"] == result.decisions
    # The merged trace carries the worker lane and decision channel.
    tids = {e["tid"] for e in result.trace["traceEvents"]}
    assert "decision" in tids
    assert any(str(tid).startswith("sweep.worker") for tid in tids)

    # And the run report renders the decision summary.
    from repro.obs.report import build_run_report, render_markdown
    entry = result.to_dict()
    entry["trace"] = result.trace
    report = build_run_report([entry])
    markdown = render_markdown(report)
    assert "Sweep decisions" in markdown


def test_sweeps_off_leaves_decisions_unset():
    result = run_experiment("table1", ExperimentContext(quick=True,
                                                        observe=True))
    assert result.decisions is None
    assert "decisions" not in result.to_dict()


def test_cli_report_and_sweep_telemetry_flags_reach_run_all(monkeypatch):
    seen = {}

    def fake_run_all(**kwargs):
        seen.update(kwargs)
        return [ExperimentResult(name="a", label="A", tables=["t"], rows=1)]

    monkeypatch.setattr(runner, "run_all", fake_run_all)
    assert runner.main(["--only", "table1", "--report", "out.md",
                        "--sweep-telemetry"]) == 0
    assert seen["report_path"] == "out.md"
    assert seen["sweep_telemetry"] is True


# ---------------------------------------------------------------------------
# Failure handling and exit status
# ---------------------------------------------------------------------------

def test_run_experiment_captures_raising_experiment(monkeypatch):
    import sys
    import types

    module = types.ModuleType("repro.experiments._boom")

    def experiment(ctx):
        raise RuntimeError("boom")

    module.experiment = experiment
    monkeypatch.setitem(sys.modules, "repro.experiments._boom", module)
    from repro.experiments import registry
    from repro.experiments.registry import ExperimentSpec
    monkeypatch.setitem(registry._BY_NAME, "boom",
                        ExperimentSpec("boom", "Boom",
                                       "repro.experiments._boom"))
    result = run_experiment("boom", ExperimentContext(quick=True))
    assert result.error == "RuntimeError: boom"
    assert result.rows == 0 and result.tables == []
    assert result.elapsed > 0
    assert result.to_dict()["error"] == "RuntimeError: boom"


def test_suite_failures_flags_errors_and_empty_tables():
    ok = ExperimentResult(name="a", label="A", tables=["t"], rows=1)
    failed = ExperimentResult.failed("b", "B", ValueError("nope"))
    empty = ExperimentResult(name="c", label="C", tables=[], rows=0)
    assert runner.suite_failures([ok]) == []
    assert runner.suite_failures([ok, failed, empty]) == [
        "b: ValueError: nope", "c: produced no table rows"]


def test_run_all_reports_failed_experiment(monkeypatch):
    def fake_run(name, ctx):
        if name == "fig2":
            return ExperimentResult.failed(
                name, "Figure 2", RuntimeError("exploded"))
        return run_experiment(name, ctx)

    monkeypatch.setattr(runner, "run_experiment", fake_run)
    buffer = io.StringIO()
    results = runner.run_all(quick=True, only=FAST, out=buffer)
    assert "[Figure 2 FAILED after" in buffer.getvalue()
    assert runner.suite_failures(results) == [
        "fig2: RuntimeError: exploded"]


def test_cli_exit_status_reflects_failures(monkeypatch, capsys):
    ok = ExperimentResult(name="a", label="A", tables=["t"], rows=1)
    failed = ExperimentResult.failed("b", "B", ValueError("nope"))

    monkeypatch.setattr(runner, "run_all", lambda **kwargs: [ok, failed])
    assert runner.main(["--only", "table1"]) == 1
    assert "FAILED b: ValueError: nope" in capsys.readouterr().err

    monkeypatch.setattr(runner, "run_all", lambda **kwargs: [ok])
    assert runner.main(["--only", "table1"]) == 0


# ---------------------------------------------------------------------------
# --validate: sanitizers across the suite
# ---------------------------------------------------------------------------

def _register_fake(monkeypatch, name, experiment_fn):
    """Install a throwaway experiment module + registry entry."""
    import sys
    import types

    module = types.ModuleType(f"repro.experiments._{name}")
    module.experiment = experiment_fn
    monkeypatch.setitem(sys.modules, f"repro.experiments._{name}", module)
    from repro.experiments import registry
    from repro.experiments.registry import ExperimentSpec
    monkeypatch.setitem(registry._BY_NAME, name,
                        ExperimentSpec(name, name.title(),
                                       f"repro.experiments._{name}"))


def test_validate_context_attaches_sanitizer_summary(monkeypatch):
    def experiment(ctx):
        from repro.hw import PLATFORM_4X_VOLTA
        from repro.runtime import System
        from repro.units import MiB

        system = System(PLATFORM_4X_VOLTA)
        assert system.validating  # the runner's scope reached us
        proc = system.collective("all_reduce", 1 * MiB)
        system.run(until=proc)
        system.finish_validation()
        table = TextTable("Validated", ["ok"])
        table.add_row(1)
        return ExperimentResult.build("validated", "Validated", [table], {})

    _register_fake(monkeypatch, "validated", experiment)
    result = run_experiment("validated",
                            ExperimentContext(quick=True, validate=True))
    assert result.error is None
    assert result.validation is not None
    assert result.validation["violations"] == 0
    assert result.validation["systems_validated"] == 1
    assert result.to_dict()["validation"]["systems_validated"] == 1


def test_validate_off_leaves_experiments_unvalidated(monkeypatch):
    def experiment(ctx):
        from repro.hw import PLATFORM_4X_VOLTA
        from repro.runtime import System

        assert not System(PLATFORM_4X_VOLTA).validating
        table = TextTable("Plain", ["ok"])
        table.add_row(1)
        return ExperimentResult.build("plain", "Plain", [table], {})

    _register_fake(monkeypatch, "plain", experiment)
    result = run_experiment("plain", ExperimentContext(quick=True))
    assert result.error is None
    assert result.validation is None


def test_tripped_invariant_fails_the_experiment_not_the_suite(monkeypatch):
    def experiment(ctx):
        from repro.errors import ValidationError
        raise ValidationError("stale chunk observed",
                              invariant="read-before-ready",
                              gpu=1, chunk=3, time=0.5)

    _register_fake(monkeypatch, "tripped", experiment)
    result = run_experiment("tripped",
                            ExperimentContext(quick=True, validate=True))
    assert result.error is not None
    assert "read-before-ready" in result.error
    assert "chunk=3" in result.error
    assert runner.suite_failures([result]) == [f"tripped: {result.error}"]


def test_results_json_carries_suite_failures_and_validate_flag(
        monkeypatch, tmp_path):
    def fake_run(name, ctx):
        assert ctx.validate
        if name == "fig2":
            return ExperimentResult.failed(
                name, "Figure 2", ValueError("tripped invariant"))
        return run_experiment(name, ctx)

    monkeypatch.setattr(runner, "run_experiment", fake_run)
    path = tmp_path / "results.json"
    buffer = io.StringIO()
    results = runner.run_all(quick=True, only=FAST, out=buffer,
                             json_path=str(path), validate=True)
    payload = json.loads(path.read_text())
    assert payload["validate"] is True
    assert payload["suite_failures"] == ["fig2: ValueError: tripped invariant"]
    assert runner.suite_failures(results) == payload["suite_failures"]


def test_clean_run_has_empty_suite_failures_in_json(tmp_path):
    path = tmp_path / "results.json"
    runner.run_all(quick=True, only=["table1"], out=io.StringIO(),
                   json_path=str(path))
    payload = json.loads(path.read_text())
    assert payload["suite_failures"] == []
    assert payload["validate"] is False


def test_cli_validate_flag_exits_nonzero_on_tripped_invariant(
        monkeypatch, capsys, tmp_path):
    def fake_run_all(**kwargs):
        assert kwargs["validate"] is True
        failed = ExperimentResult.failed(
            "fig6", "Figure 6",
            ValueError("[read-before-ready] gpu=0 chunk=2 t=1e-3s stale"))
        if kwargs.get("json_path"):
            runner.write_results_json(
                __import__("pathlib").Path(kwargs["json_path"]), [failed],
                quick=True, jobs=1, total_elapsed=0.1, validate=True)
        return [failed]

    monkeypatch.setattr(runner, "run_all", fake_run_all)
    path = tmp_path / "results.json"
    assert runner.main(["--quick", "--validate", "--only", "fig6",
                        "--json", str(path)]) == 1
    assert "read-before-ready" in capsys.readouterr().err
    assert json.loads(path.read_text())["suite_failures"]


def test_cli_validate_flag_passes_clean(capsys):
    assert runner.main(["--quick", "--validate", "--only", "table1"]) == 0
    assert "Table I" in capsys.readouterr().out
