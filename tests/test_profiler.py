"""Tests for PROACT's compile-time profiler."""

import os

import pytest

from repro.core import (
    MECH_CDP,
    MECH_INLINE,
    MECH_POLLING,
    ParallelProfiler,
    ProactConfig,
    Profiler,
)
from repro.core.profiler import (
    ExecutorBackend,
    ProcessPoolBackend,
    ProfileEntry,
    ProfileResult,
    run_phases,
)
from repro.errors import ProactError
from repro.hw import PLATFORM_4X_KEPLER, PLATFORM_4X_VOLTA
from repro.units import KiB, MiB
from repro.workloads import PageRankWorkload
from tests.conftest import small_jacobi as _small_jacobi
from tests.conftest import small_pagerank as _small_pagerank

SMALL_CHUNKS = (128 * KiB, 1 * MiB)
SMALL_THREADS = (1024, 4096)


def small_pagerank():
    return _small_pagerank(iterations=2)


def small_jacobi():
    return _small_jacobi(iterations=2)


def test_profiler_validation():
    with pytest.raises(ProactError):
        Profiler(PLATFORM_4X_VOLTA, search="random")
    with pytest.raises(ProactError):
        Profiler(PLATFORM_4X_VOLTA, chunk_sizes=())


def test_profile_result_requires_entries():
    from repro.core.profiler import ProfileResult
    with pytest.raises(ProactError):
        _ = ProfileResult(entries=[]).best


def test_coordinate_search_entry_count():
    profiler = Profiler(PLATFORM_4X_VOLTA, chunk_sizes=SMALL_CHUNKS,
                        thread_counts=SMALL_THREADS)
    profile = profiler.profile(small_pagerank().phase_builder())
    # inline: 1; per decoupled mechanism: |chunks| + |threads| - 1 = 3.
    assert len(profile.entries) == 1 + 2 * 3


def test_exhaustive_search_entry_count():
    profiler = Profiler(PLATFORM_4X_VOLTA, chunk_sizes=SMALL_CHUNKS,
                        thread_counts=SMALL_THREADS, search="exhaustive")
    profile = profiler.profile(small_pagerank().phase_builder())
    assert len(profile.entries) == 1 + 2 * (2 * 2)


def test_profiler_picks_decoupled_for_sporadic_writes():
    # Paper-scale PageRank (trimmed to 2 iterations): the sporadic write
    # order makes inline stores hopeless, so the profiler must pick a
    # decoupled mechanism (Table II).
    workload = PageRankWorkload(iterations=2)
    profiler = Profiler(PLATFORM_4X_VOLTA, chunk_sizes=SMALL_CHUNKS,
                        thread_counts=SMALL_THREADS)
    profile = profiler.profile(workload.phase_builder())
    assert profile.best_config.mechanism in (MECH_POLLING, MECH_CDP)


def test_profiler_picks_inline_for_dense_writes():
    profiler = Profiler(PLATFORM_4X_VOLTA, chunk_sizes=SMALL_CHUNKS,
                        thread_counts=SMALL_THREADS)
    profile = profiler.profile(small_jacobi().phase_builder())
    assert profile.best_config.mechanism == MECH_INLINE


def test_profiler_kepler_prefers_cdp_over_polling():
    profiler = Profiler(PLATFORM_4X_KEPLER, chunk_sizes=SMALL_CHUNKS,
                        thread_counts=(256, 1024))
    profile = profiler.profile(small_pagerank().phase_builder())
    cdp = profile.best_for_mechanism(MECH_CDP)
    polling = profile.best_for_mechanism(MECH_POLLING)
    assert cdp.runtime < polling.runtime


def test_best_for_mechanism_unknown_rejected():
    profiler = Profiler(PLATFORM_4X_VOLTA, chunk_sizes=SMALL_CHUNKS,
                        thread_counts=SMALL_THREADS)
    profile = profiler.profile(small_jacobi().phase_builder())
    with pytest.raises(ProactError):
        profile.best_for_mechanism("dma")


def test_best_breaks_ties_toward_smallest_config():
    # Ties on runtime must resolve to the smallest (chunk, threads)
    # independent of entry order, so coordinate and exhaustive search
    # (and any executor backend) agree on the winner.
    entries = [
        ProfileEntry(ProactConfig(MECH_POLLING, 1 * MiB, 4096), 2.0),
        ProfileEntry(ProactConfig(MECH_POLLING, 128 * KiB, 4096), 2.0),
        ProfileEntry(ProactConfig(MECH_POLLING, 128 * KiB, 1024), 2.0),
        ProfileEntry(ProactConfig(MECH_CDP, 4 * MiB, 512), 3.0),
    ]
    expected = ProactConfig(MECH_POLLING, 128 * KiB, 1024)
    assert ProfileResult(entries=entries).best.config == expected
    assert ProfileResult(entries=entries[::-1]).best.config == expected
    reversed_result = ProfileResult(entries=entries[::-1])
    assert reversed_result.best_for_mechanism(
        MECH_POLLING).config == expected


def test_coordinate_and_exhaustive_agree_on_best():
    kwargs = dict(chunk_sizes=SMALL_CHUNKS, thread_counts=SMALL_THREADS)
    builder = small_pagerank().phase_builder()
    coordinate = Profiler(PLATFORM_4X_VOLTA, **kwargs).profile(builder)
    exhaustive = Profiler(PLATFORM_4X_VOLTA, search="exhaustive",
                          **kwargs).profile(builder)
    assert coordinate.best_config == exhaustive.best_config


def test_parallel_profiler_matches_serial_exactly():
    # Each measurement is a pure function of (platform, config, phases),
    # so the process-pool sweep must be byte-identical to the serial one
    # — same entries, same runtimes, same order.
    builder = small_pagerank().phase_builder()
    for search in ("coordinate", "exhaustive"):
        serial = Profiler(
            PLATFORM_4X_VOLTA, chunk_sizes=SMALL_CHUNKS,
            thread_counts=SMALL_THREADS, search=search).profile(builder)
        parallel = ParallelProfiler(
            PLATFORM_4X_VOLTA, chunk_sizes=SMALL_CHUNKS,
            thread_counts=SMALL_THREADS, search=search,
            jobs=4).profile(builder)
        assert serial.entries == parallel.entries
        assert serial.best == parallel.best


def test_parallel_pruned_sweep_matches_serial_argmin():
    # The best-first pruned sweep sizes its waves by the backend's
    # parallelism; the skip condition is still strict, so the winner —
    # config and bitwise runtime — must match the serial pruned sweep
    # and brute force.
    builder = small_pagerank().phase_builder()
    kwargs = dict(chunk_sizes=SMALL_CHUNKS, thread_counts=SMALL_THREADS,
                  search="exhaustive")
    brute = Profiler(PLATFORM_4X_VOLTA, **kwargs).profile(builder)
    parallel = ParallelProfiler(PLATFORM_4X_VOLTA, prune=True, jobs=2,
                                **kwargs).profile(builder)
    assert parallel.best.config == brute.best.config
    assert parallel.best.runtime == brute.best.runtime
    measured = {entry.config: entry.runtime for entry in brute.entries}
    for entry in parallel.entries:
        assert measured[entry.config] == entry.runtime
    assert (len(parallel.entries) + parallel.pruned_configs
            == len(brute.entries))


def _crash_on_three(task):
    # os._exit skips all cleanup — to the pool this is a worker that
    # vanished mid-task, exactly like an OOM kill or a segfault.
    if task == 3:
        os._exit(17)
    return task * 2


def test_dying_worker_surfaces_error_with_offending_tasks():
    # Regression: a worker death used to poison the pool and hang or
    # surface as a bare BrokenProcessPool with no hint of which config
    # was in flight.
    backend = ProcessPoolBackend(jobs=2)
    with pytest.raises(ProactError, match=r"worker process died.*3"):
        backend.run_tasks(_crash_on_three, list(range(8)))


def test_dying_worker_in_session_names_batch():
    backend = ProcessPoolBackend(jobs=2)
    with backend.open_session(_crash_on_three) as session:
        with pytest.raises(ProactError, match="unfinished batch"):
            session.map(list(range(8)))


def test_warm_session_maps_in_task_order():
    backend = ProcessPoolBackend(jobs=2)
    with backend.open_session(_double) as session:
        assert session.map(list(range(20))) == [2 * i for i in range(20)]
        assert session.map([]) == []
    with pytest.raises(ProactError, match="closed"):
        session.map([1])


def _double(task):
    return task * 2


def test_custom_backend_overriding_run_tasks_still_works():
    # Third-party backends predating the warm-worker seam override only
    # run_tasks; the default open_session must route through it.
    calls = []

    class Recording(ExecutorBackend):
        def run_tasks(self, fn, tasks):
            calls.append(len(tasks))
            return [fn(task) for task in tasks]

    backend = Recording()
    with backend.open_session(_double) as session:
        assert session.map([1, 2, 3]) == [2, 4, 6]
    assert calls == [3]
    assert backend.parallelism == 1


def test_process_pool_backend_validation():
    with pytest.raises(ProactError):
        ProcessPoolBackend(jobs=0)
    # jobs=1 degrades to the serial path (no pool spawned).
    backend = ProcessPoolBackend(jobs=1)
    entry = backend.measure_wave(
        PLATFORM_4X_VOLTA, [ProactConfig(MECH_POLLING, 1 * MiB, 2048)],
        small_pagerank().phase_builder())[0]
    assert entry.runtime > 0
    assert backend.measure_wave(
        PLATFORM_4X_VOLTA, [], small_pagerank().phase_builder()) == []


def test_sweep_signature_identifies_search_space():
    base = Profiler(PLATFORM_4X_VOLTA, chunk_sizes=SMALL_CHUNKS,
                    thread_counts=SMALL_THREADS)
    same = Profiler(PLATFORM_4X_VOLTA, chunk_sizes=SMALL_CHUNKS,
                    thread_counts=SMALL_THREADS)
    assert base.sweep_signature() == same.sweep_signature()
    # The backend is excluded: parallel sweeps share cache hits.
    parallel = ParallelProfiler(PLATFORM_4X_VOLTA, chunk_sizes=SMALL_CHUNKS,
                                thread_counts=SMALL_THREADS, jobs=4)
    assert parallel.sweep_signature() == base.sweep_signature()
    # Any grid/search change produces a distinct namespace.
    wider = Profiler(PLATFORM_4X_VOLTA, chunk_sizes=(*SMALL_CHUNKS, 4 * MiB),
                     thread_counts=SMALL_THREADS)
    exhaustive = Profiler(PLATFORM_4X_VOLTA, chunk_sizes=SMALL_CHUNKS,
                          thread_counts=SMALL_THREADS, search="exhaustive")
    assert wider.sweep_signature() != base.sweep_signature()
    assert exhaustive.sweep_signature() != base.sweep_signature()


def test_run_phases_deterministic():
    config = ProactConfig(MECH_POLLING, 1 * MiB, 2048)
    builder = small_pagerank().phase_builder()
    first = run_phases(PLATFORM_4X_VOLTA, config, builder)
    second = run_phases(PLATFORM_4X_VOLTA, config, builder)
    assert first == second


def test_run_phases_infinite_bw_flag():
    config = ProactConfig(MECH_POLLING, 1 * MiB, 2048)
    builder = small_pagerank().phase_builder()
    real = run_phases(PLATFORM_4X_VOLTA, config, builder)
    ideal = run_phases(PLATFORM_4X_VOLTA, config, builder,
                       infinite_bw=True)
    assert ideal < real


def test_run_phases_instrumentation_flag():
    config = ProactConfig(MECH_POLLING, 1 * MiB, 2048)
    builder = small_pagerank().phase_builder()
    with_tracking = run_phases(PLATFORM_4X_VOLTA, config, builder,
                               elide_transfers=True)
    without = run_phases(PLATFORM_4X_VOLTA, config, builder,
                         elide_transfers=True, instrument=False)
    assert with_tracking > without
