"""Behavior suite for the tuning service (queue → coalesce → shard → store).

Covers the service's externally observable contracts: the three answer
tiers (hit/coalesced/miss) and their plan byte-identity with the direct
``Session`` path, exactly-one-sweep coalescing under concurrent
identical queries, typed backpressure rejection at the bounded queues,
deadline expiry that detaches the waiter but keeps the pool healthy,
version-fenced invalidation forcing a re-sweep, and a small threaded
zipfian soak asserting the cache actually warms up.

Sweeps are kept tiny (one or two candidate configs on the small
conftest workloads) so every test runs in milliseconds; latency-shaped
tests inject a :class:`SlowBackend` through ``backend_factory`` instead
of relying on wall-clock-sized grids.
"""

import asyncio
import pickle
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import Session
from repro.core.profiler import SerialBackend
from repro.errors import (
    ConfigurationError,
    ServiceClosedError,
    ServiceOverloadedError,
    ServiceTimeoutError,
)
from repro.hw import platform_by_name
from repro.service import (
    CollectiveQuery,
    ProfileQuery,
    QueryMix,
    ThreadedTuningService,
    TuningService,
    zipfian_indices,
)
from repro.units import KiB, MiB
from tests.conftest import small_jacobi, small_pagerank


def tiny_query(workload=None, **overrides):
    """A profile query whose sweep is a couple of milliseconds."""
    kwargs = dict(strategy="exhaustive", chunk_sizes=(128 * KiB,),
                  thread_counts=(1024,), mechanisms=("polling",))
    kwargs.update(overrides)
    return ProfileQuery("4x_volta", workload or small_pagerank(1),
                        **kwargs)


class SlowBackend(SerialBackend):
    """A serial backend with an injected per-sweep latency."""

    def __init__(self, delay_s):
        self.delay_s = delay_s

    def run_tasks(self, fn, tasks):
        time.sleep(self.delay_s)
        return super().run_tasks(fn, tasks)


class BoomBackend(SerialBackend):
    """A backend whose sweeps always die."""

    def run_tasks(self, fn, tasks):
        raise RuntimeError("sweep exploded")


# ---------------------------------------------------------------------------
# Answer tiers and coalescing
# ---------------------------------------------------------------------------


def test_miss_then_hit_and_plans_are_byte_identical():
    async def scenario():
        async with TuningService(shards=1) as service:
            first = await service.submit(tiny_query())
            second = await service.submit(tiny_query())
            return first, second, service.stats()

    first, second, stats = asyncio.run(scenario())
    assert first.outcome == "miss"
    assert second.outcome == "hit"
    assert pickle.dumps(first.plan) == pickle.dumps(second.plan)
    assert stats["sweeps"] == 1.0
    assert second.latency_s < first.latency_s


def test_n_identical_concurrent_queries_run_exactly_one_sweep():
    fanin = 12

    async def scenario():
        async with TuningService(shards=2) as service:
            results = await asyncio.gather(
                *(service.submit(tiny_query()) for _ in range(fanin)))
            return results, service.stats()

    results, stats = asyncio.run(scenario())
    assert stats["sweeps"] == 1.0
    outcomes = [r.outcome for r in results]
    assert outcomes.count("miss") == 1
    assert outcomes.count("coalesced") == fanin - 1
    plans = {pickle.dumps(r.plan) for r in results}
    assert len(plans) == 1  # every waiter got the one computed plan


def test_distinct_signatures_do_not_coalesce():
    async def scenario():
        async with TuningService(shards=2) as service:
            results = await asyncio.gather(
                service.submit(tiny_query(small_pagerank(1))),
                service.submit(tiny_query(small_jacobi(1))),
                service.submit(tiny_query(thread_counts=(2048,))))
            return results, service.stats()

    results, stats = asyncio.run(scenario())
    assert [r.outcome for r in results] == ["miss"] * 3
    assert stats["sweeps"] == 3.0
    assert len({r.signature for r in results}) == 3


def test_collective_queries_are_served_and_cached():
    query = CollectiveQuery("4x_volta", "all_reduce", 4 * MiB,
                            chunk_sizes=(128 * KiB, 1 * MiB))

    async def scenario():
        async with TuningService(shards=1) as service:
            first = await service.submit(query)
            second = await service.submit(query)
            return first, second

    first, second = asyncio.run(scenario())
    assert (first.outcome, second.outcome) == ("miss", "hit")
    assert pickle.dumps(first.plan) == pickle.dumps(second.plan)


def test_service_plans_match_the_direct_session_path():
    session = Session("4x_volta")
    profile_query = tiny_query(chunk_sizes=(128 * KiB, 1 * MiB))
    collective_query = CollectiveQuery(
        "4x_volta", "all_reduce", 1 * MiB, chunk_sizes=(128 * KiB,))

    async def scenario():
        async with TuningService(shards=1) as service:
            profile = await service.submit(profile_query)
            collective = await service.submit(collective_query)
            return profile, collective

    profile, collective = asyncio.run(scenario())
    direct_profile = session.profile(
        profile_query.workload, strategy=profile_query.strategy,
        chunk_sizes=profile_query.chunk_sizes,
        thread_counts=profile_query.thread_counts,
        mechanisms=profile_query.mechanisms).best_config
    direct_collective = session.plan_collective(
        collective_query.collective, collective_query.nbytes,
        chunk_sizes=collective_query.chunk_sizes)
    assert pickle.dumps(profile.plan) == pickle.dumps(direct_profile)
    assert pickle.dumps(collective.plan) == pickle.dumps(direct_collective)


def test_default_platform_serves_platformless_queries():
    query = ProfileQuery(None, small_pagerank(1), strategy="exhaustive",
                         chunk_sizes=(128 * KiB,), thread_counts=(1024,),
                         mechanisms=("polling",))

    async def scenario():
        async with TuningService(
                shards=1,
                default_platform=platform_by_name("4x_volta")) as service:
            return await service.submit(query)

    result = asyncio.run(scenario())
    assert result.outcome == "miss"
    assert "4x_volta" in result.signature


def test_platformless_query_without_default_is_rejected_at_submit():
    async def scenario():
        async with TuningService(shards=1) as service:
            await service.submit(ProfileQuery(None, small_pagerank(1)))

    with pytest.raises(ConfigurationError):
        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Backpressure, timeouts, failures
# ---------------------------------------------------------------------------


def test_full_shard_queue_rejects_with_typed_overload_error():
    async def scenario():
        async with TuningService(
                shards=1, queue_depth=1,
                backend_factory=lambda s: SlowBackend(0.2)) as service:
            queries = [tiny_query(thread_counts=(1024 * (i + 1),))
                       for i in range(5)]
            tasks = [asyncio.ensure_future(service.submit(q))
                     for q in queries]
            settled = await asyncio.gather(*tasks,
                                           return_exceptions=True)
            return settled, service.stats()

    settled, stats = asyncio.run(scenario())
    rejected = [s for s in settled
                if isinstance(s, ServiceOverloadedError)]
    served = [s for s in settled if not isinstance(s, BaseException)]
    # One queue slot, so at most one sweeping + one queued; whether the
    # worker has dequeued the first job yet decides if a second fits.
    # Everything else bounces immediately with the typed error.
    assert 3 <= len(rejected) <= 4
    assert len(served) == 5 - len(rejected)
    assert stats["requests"]["rejected"] == float(len(rejected))
    error = rejected[0]
    assert error.shard == 0 and error.depth == 1


def test_timeout_detaches_the_waiter_but_the_sweep_seeds_the_cache():
    async def scenario():
        async with TuningService(
                shards=1,
                backend_factory=lambda s: SlowBackend(0.3)) as service:
            with pytest.raises(ServiceTimeoutError) as excinfo:
                await service.submit(tiny_query(), timeout=0.05)
            # The sweep is still running; a patient retry coalesces
            # onto it and succeeds — the pool is healthy.
            retry = await service.submit(tiny_query(), timeout=5.0)
            return excinfo.value, retry, service.stats()

    error, retry, stats = asyncio.run(scenario())
    assert error.timeout == pytest.approx(0.05)
    assert error.signature == retry.signature
    assert retry.outcome == "coalesced"
    assert retry.plan is not None
    assert stats["requests"]["timeout"] == 1.0
    assert stats["sweeps"] == 1.0  # the timed-out sweep was not retried


def test_failing_sweep_propagates_and_the_pool_stays_healthy():
    calls = {"count": 0}

    def factory(shard):
        # First shard's backend explodes; replacements behave.
        calls["count"] += 1
        return BoomBackend() if calls["count"] == 1 else SerialBackend()

    async def scenario():
        async with TuningService(shards=1,
                                 backend_factory=factory) as service:
            with pytest.raises(RuntimeError, match="sweep exploded"):
                await service.submit(tiny_query())
            stats_after_error = service.stats()
            # The failure is not cached: the same query sweeps again
            # (and fails again on this backend) rather than serving a
            # poisoned plan.
            with pytest.raises(RuntimeError):
                await service.submit(tiny_query())
            return stats_after_error

    stats = asyncio.run(scenario())
    assert stats["requests"]["error"] == 1.0
    assert stats["inflight"] == 0
    assert stats["store_entries"] == {"profiles": 0, "plans": 0}


def test_submit_on_a_stopped_service_raises_closed_error():
    service = TuningService(shards=1)
    with pytest.raises(ServiceClosedError):
        asyncio.run(service.submit(tiny_query()))


def test_aclose_fails_leftover_inflight_waiters():
    async def scenario():
        service = await TuningService(
            shards=1,
            backend_factory=lambda s: SlowBackend(5.0)).start()
        waiter = asyncio.ensure_future(service.submit(tiny_query()))
        await asyncio.sleep(0.05)  # let the job reach the worker
        await service.aclose()
        with pytest.raises(ServiceClosedError):
            await waiter

    asyncio.run(scenario())


def test_invalid_construction_is_rejected():
    with pytest.raises(ConfigurationError):
        TuningService(shards=0)
    with pytest.raises(ConfigurationError):
        TuningService(queue_depth=0)


# ---------------------------------------------------------------------------
# Invalidation
# ---------------------------------------------------------------------------


def test_invalidate_forces_a_resweep():
    async def scenario():
        async with TuningService(shards=1) as service:
            first = await service.submit(tiny_query())
            assert (await service.submit(tiny_query())).outcome == "hit"
            removed = service.invalidate()
            second = await service.submit(tiny_query())
            return first, removed, second, service.stats()

    first, removed, second, stats = asyncio.run(scenario())
    assert removed == 1
    assert second.outcome == "miss"
    assert stats["sweeps"] == 2.0
    assert pickle.dumps(first.plan) == pickle.dumps(second.plan)
    assert stats["store_versions"]["profiles"] == 1


# ---------------------------------------------------------------------------
# Threaded facade and the zipfian soak
# ---------------------------------------------------------------------------


def test_threaded_service_blocks_from_many_client_threads():
    with ThreadedTuningService(shards=2) as service:
        with ThreadPoolExecutor(8) as pool:
            results = list(pool.map(service.query, [tiny_query()] * 8))
        stats = service.stats()
    assert stats["sweeps"] == 1.0
    assert {r.outcome for r in results} <= {"miss", "coalesced", "hit"}
    assert len({pickle.dumps(r.plan) for r in results}) == 1
    # Closed: further queries are refused, not hung.
    with pytest.raises(ServiceClosedError):
        service.query(tiny_query())


def test_zipfian_soak_warms_the_cache_and_coalesces():
    universe = [
        tiny_query(small_pagerank(1)),
        tiny_query(small_jacobi(1)),
        tiny_query(small_pagerank(1), thread_counts=(2048,)),
        CollectiveQuery("4x_volta", "all_reduce", 1 * MiB,
                        chunk_sizes=(128 * KiB,)),
    ]
    mix = QueryMix.zipfian(universe, 48, seed=3)
    wave_seconds = []
    with ThreadedTuningService(shards=2) as service:
        for wave in mix.waves(12):
            started = time.perf_counter()
            with ThreadPoolExecutor(4) as pool:
                for result in pool.map(service.query, wave):
                    assert result.plan is not None
            wave_seconds.append(time.perf_counter() - started)
        stats = service.stats()
    # Perfect coalescing: one sweep per distinct signature drawn.
    assert stats["sweeps"] <= mix.unique_queries
    assert stats["hit_rate"] > 0.5
    # The cache warms up: once every signature is seeded, a wave of
    # pure hits is far faster than the cold first wave.
    assert wave_seconds[-1] < wave_seconds[0]
    assert stats["requests"]["hit"] >= len(mix) - mix.unique_queries * 2


def test_stats_endpoint_shape():
    with ThreadedTuningService(shards=2, queue_depth=7) as service:
        service.query(tiny_query())
        service.query(tiny_query())
        stats = service.stats()
    for key in ("running", "shards", "queue_depth_bound", "requests",
                "answered", "hit_rate", "sweeps", "inflight",
                "queue_depths", "store_entries", "store_versions",
                "latency_s"):
        assert key in stats, key
    assert stats["running"] is True
    assert stats["shards"] == 2
    assert stats["queue_depth_bound"] == 7
    assert stats["answered"] == 2.0
    assert set(stats["queue_depths"]) == {0, 1}
    assert set(stats["latency_s"]) <= {"hit", "coalesced", "miss"}
    for summary in stats["latency_s"].values():
        assert {"count", "p50", "p99"} <= set(summary)
    import json
    json.dumps(stats)  # the endpoint view must be JSON-serializable


def test_zipfian_indices_are_deterministic_and_skewed():
    a = zipfian_indices(8, 400, seed=11)
    b = zipfian_indices(8, 400, seed=11)
    assert a == b
    assert a.count(0) > a.count(7)  # rank-1 dominates the tail
    assert set(a) <= set(range(8))
    with pytest.raises(ConfigurationError):
        zipfian_indices(0, 10)
