"""Concurrency and persistence properties of the signature-keyed stores.

The tuning service hammers :class:`~repro.core.cache.ProfileStore` and
:class:`~repro.collectives.tuner.CollectivePlanStore` from worker
threads and (via the warm sweep pool) from sibling processes sharing
one store file.  These tests pin the contracts that makes that safe:
no lost updates under a thread pool, version-fenced puts that cannot
resurrect invalidated plans, byte-identical plans across a
persist/reload round trip, and atomic (never torn) store files.
"""

import json
import os
import pickle
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.collectives.tuner import CollectiveChoice, CollectivePlanStore
from repro.core.cache import ProfileStore
from repro.core.config import ProactConfig
from repro.errors import CollectiveError, ProactError
from repro.units import KiB

fast_settings = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])


def config(i):
    """A distinct-but-valid plan per index (chunk size encodes i)."""
    return ProactConfig("polling", (i + 1) * 4 * KiB, 1024)


def choice(i):
    return CollectiveChoice("ring", (i + 1) * 4 * KiB)


# ---------------------------------------------------------------------------
# No lost updates
# ---------------------------------------------------------------------------


def test_profile_store_keeps_every_update_from_a_thread_pool():
    store = ProfileStore()
    threads, puts_each = 8, 50

    def writer(tid):
        for i in range(puts_each):
            assert store.put("4x_volta", f"w{tid}_{i}", config(i), "sig")
            # Interleave reads; a half-applied mutation would surface
            # here as a None or a foreign value.
            got = store.get("4x_volta", f"w{tid}_{i}", "sig")
            assert got == config(i)

    with ThreadPoolExecutor(threads) as pool:
        for _ in pool.map(writer, range(threads)):
            pass
    assert len(store) == threads * puts_each


def test_plan_store_keeps_every_update_from_a_thread_pool():
    store = CollectivePlanStore()
    threads, puts_each = 8, 50

    def writer(tid):
        for i in range(puts_each):
            assert store.put("4x_volta", "all_reduce", f"b{tid}_{i}",
                             choice(i), "sig")
            assert store.get("4x_volta", "all_reduce", f"b{tid}_{i}",
                             "sig") == choice(i)

    with ThreadPoolExecutor(threads) as pool:
        for _ in pool.map(writer, range(threads)):
            pass
    assert len(store) == threads * puts_each


# ---------------------------------------------------------------------------
# Versioned invalidation
# ---------------------------------------------------------------------------


def test_put_fenced_by_version_is_refused_after_invalidate():
    store = ProfileStore()
    version = store.version
    store.invalidate()  # model code changed while a sweep was running
    assert not store.put("4x_volta", "Pagerank", config(0), "sig",
                         if_version=version)
    assert store.get("4x_volta", "Pagerank", "sig") is None
    # A put fenced on the *current* version lands.
    assert store.put("4x_volta", "Pagerank", config(0), "sig",
                     if_version=store.version)
    assert store.get("4x_volta", "Pagerank", "sig") == config(0)


def test_plan_store_put_fenced_by_version_is_refused_after_invalidate():
    store = CollectivePlanStore()
    version = store.version
    store.invalidate()
    assert not store.put("4x_volta", "all_reduce", "small", choice(0),
                         "sig", if_version=version)
    assert store.get("4x_volta", "all_reduce", "small", "sig") is None


def test_no_stale_reads_after_concurrent_invalidation():
    """Sweeps that started before an invalidation can never land: every
    racing fenced put either completes before the invalidate (and is
    removed by it) or is refused after it — so once ``invalidate``
    returns and the writers drain, the store holds nothing stale."""
    store = ProfileStore()
    writers = 8
    barrier = threading.Barrier(writers + 1)

    def stale_writer(tid):
        version = store.version  # observed before the invalidation
        barrier.wait()
        return store.put("4x_volta", f"w{tid}", config(tid), "sig",
                         if_version=version)

    with ThreadPoolExecutor(writers) as pool:
        futures = [pool.submit(stale_writer, tid)
                   for tid in range(writers)]
        barrier.wait()
        store.invalidate()
        landed = [f.result() for f in futures]
    # Some puts may have squeezed in before the invalidate bumped the
    # version — those were then removed by it.  None may remain.
    assert len(store) == 0
    for tid, did_land in enumerate(landed):
        assert store.get("4x_volta", f"w{tid}", "sig") is None, did_land
    # Post-invalidation puts are unaffected.
    assert store.put("4x_volta", "fresh", config(1), "sig")
    assert len(store) == 1


def test_invalidate_is_selective_and_bumps_version_once_per_call():
    store = ProfileStore()
    store.put("4x_volta", "Pagerank", config(0), "a")
    store.put("4x_volta", "Pagerank", config(1), "b")
    store.put("2x_pascal", "Jacobi", config(2), "a")
    before = store.version
    assert store.invalidate(signature="a") == 2
    assert store.version == before + 1
    assert store.get("4x_volta", "Pagerank", "a") is None
    assert store.get("4x_volta", "Pagerank", "b") == config(1)


# ---------------------------------------------------------------------------
# Serial-equivalence property (hypothesis)
# ---------------------------------------------------------------------------

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers(0, 5), st.integers(0, 7)),
        st.tuples(st.just("get"), st.integers(0, 5), st.just(0)),
        st.tuples(st.just("invalidate"), st.integers(0, 5), st.just(0)),
        st.tuples(st.just("invalidate_all"), st.just(0), st.just(0)),
    ),
    max_size=40)


@fast_settings
@given(ops=_ops)
def test_store_matches_a_plain_dict_model(ops):
    """Any op sequence leaves the store equivalent to the obvious
    dict-plus-counter model: no op loses, leaks, or resurrects a plan."""
    store = ProfileStore()
    model, version = {}, 0
    for op, k, v in ops:
        key = ("4x_volta", f"w{k}", "sig")
        if op == "put":
            assert store.put(key[0], key[1], config(v), "sig",
                             if_version=version)
            model[key] = config(v)
        elif op == "get":
            assert store.get(key[0], key[1], "sig") == model.get(key)
        elif op == "invalidate":
            removed = store.invalidate(workload_name=f"w{k}")
            doomed = [m for m in model if m[1] == f"w{k}"]
            assert removed == len(doomed)
            for m in doomed:
                del model[m]
            version += 1
        else:
            store.invalidate()
            model.clear()
            version += 1
        assert store.version == version
        assert len(store) == len(model)


# ---------------------------------------------------------------------------
# Persistence: byte identity, atomicity, merge semantics
# ---------------------------------------------------------------------------


def test_plans_survive_persist_reload_byte_identical(tmp_path):
    path = tmp_path / "profiles.json"
    store = ProfileStore(path)
    plan = ProactConfig("cdp", 128 * KiB, 2048)
    store.put("4x_volta", "Pagerank", plan, "sig")
    reloaded = ProfileStore(path).get("4x_volta", "Pagerank", "sig")
    assert pickle.dumps(reloaded) == pickle.dumps(plan)

    cpath = tmp_path / "plans.json"
    cstore = CollectivePlanStore(cpath)
    pick = CollectiveChoice("tree", 128 * KiB)
    cstore.put("4x_volta", "all_reduce", "large", pick, "sig")
    got = CollectivePlanStore(cpath).get("4x_volta", "all_reduce",
                                         "large", "sig")
    assert pickle.dumps(got) == pickle.dumps(pick)


def test_failed_save_leaves_the_previous_file_intact(tmp_path, monkeypatch):
    """Regression for the torn-read hazard: a save that dies mid-flight
    (here: the rename itself) must leave the old complete document on
    disk, never a truncated or half-written one."""
    path = tmp_path / "profiles.json"
    store = ProfileStore(path)
    store.put("4x_volta", "Pagerank", config(0), "sig")
    before = path.read_text()

    def boom(src, dst):
        raise OSError("simulated crash during rename")

    monkeypatch.setattr(os, "replace", boom)
    with pytest.raises(OSError):
        store.put("4x_volta", "Jacobi", config(1), "sig")
    monkeypatch.undo()

    assert path.read_text() == before  # old document, byte for byte
    assert not list(tmp_path.glob("*.tmp.*"))  # temp file cleaned up
    survivor = ProfileStore(path)
    assert survivor.get("4x_volta", "Pagerank", "sig") == config(0)
    assert survivor.get("4x_volta", "Jacobi", "sig") is None


def test_concurrent_reloads_never_observe_torn_json(tmp_path):
    """A reader loading the store file while a writer saves repeatedly
    must always parse a complete document (old or new, never partial)."""
    path = tmp_path / "profiles.json"
    store = ProfileStore(path)
    store.put("4x_volta", "seed", config(0), "sig")
    stop = threading.Event()
    failures = []

    def reader():
        while not stop.is_set():
            try:
                ProfileStore(path)
            except ProactError as exc:  # torn read ⇒ invalid JSON
                failures.append(exc)
                return

    thread = threading.Thread(target=reader)
    thread.start()
    try:
        for i in range(60):
            store.put("4x_volta", f"w{i}", config(i % 8), "sig")
    finally:
        stop.set()
        thread.join()
    assert not failures


def test_put_saves_merge_entries_from_a_sibling_store(tmp_path):
    """Two store objects on one path model two processes appending
    different signatures; read-merge-write keeps both."""
    path = tmp_path / "profiles.json"
    ours, theirs = ProfileStore(path), ProfileStore(path)
    ours.put("4x_volta", "Pagerank", config(0), "a")
    theirs.put("4x_volta", "Jacobi", config(1), "b")
    merged = ProfileStore(path)
    assert merged.get("4x_volta", "Pagerank", "a") == config(0)
    assert merged.get("4x_volta", "Jacobi", "b") == config(1)


def test_invalidate_save_is_authoritative_not_merged(tmp_path):
    """Invalidation must overwrite, not merge — merging would resurrect
    exactly the on-disk entries being invalidated."""
    path = tmp_path / "profiles.json"
    store = ProfileStore(path)
    store.put("4x_volta", "Pagerank", config(0), "a")
    store.put("4x_volta", "Jacobi", config(1), "b")
    store.invalidate()
    assert len(ProfileStore(path)) == 0


def test_reload_folds_in_sibling_puts_without_clobbering_ours(tmp_path):
    path = tmp_path / "profiles.json"
    ours, theirs = ProfileStore(path), ProfileStore(path)
    ours.put("4x_volta", "Pagerank", config(0), "a")
    theirs.put("4x_volta", "Pagerank", config(5), "a")  # conflicting key
    theirs.put("4x_volta", "Jacobi", config(1), "b")
    ours.reload()
    # Ours wins the conflict; the genuinely new entry appears.
    assert ours.get("4x_volta", "Pagerank", "a") == config(0)
    assert ours.get("4x_volta", "Jacobi", "b") == config(1)


def test_corrupt_documents_raise_the_store_specific_error(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{ truncated")
    with pytest.raises(ProactError):
        ProfileStore(bad)
    with pytest.raises(CollectiveError):
        CollectivePlanStore(bad)
    shallow = tmp_path / "shallow.json"
    shallow.write_text(json.dumps({"onlyonepart": {}}))
    with pytest.raises(ProactError):
        ProfileStore(shallow)
