"""Unit and property tests for the fluid-share compute model."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.hw.fluid import FluidShare
from repro.sim import Engine


def make_share(capacity=1.0):
    engine = Engine()
    return engine, FluidShare(engine, capacity=capacity)


# ---------------------------------------------------------------------------
# Basic execution
# ---------------------------------------------------------------------------

def test_solo_task_runs_at_full_demand():
    engine, share = make_share()
    task = share.launch("kernel", work=2.0, demand=1.0)
    engine.run(until=task.done)
    assert engine.now == pytest.approx(2.0)


def test_low_demand_task_alone_is_not_slowed():
    engine, share = make_share()
    task = share.launch("agent", work=0.5, demand=0.1)
    engine.run(until=task.done)
    # Work means "seconds to complete alone", regardless of demand.
    assert engine.now == pytest.approx(0.5)


def test_zero_work_completes_immediately():
    engine, share = make_share()
    task = share.launch("empty", work=0.0)
    assert task.finished
    assert engine.now == 0.0


def test_oversubscription_slows_everything():
    engine, share = make_share()
    a = share.launch("a", work=1.0, demand=1.0)
    b = share.launch("b", work=1.0, demand=1.0)
    engine.run(until=engine.all_of([a.done, b.done]))
    # Two full-demand tasks at capacity 1: both take 2x.
    assert engine.now == pytest.approx(2.0)


def test_kernel_with_small_agent_sees_proportional_slowdown():
    """A 6.25% demand agent slows a saturating kernel by 1.0625x.

    This is the SM-stealing effect of a software PROACT polling agent
    (128 threads on a GPU with 2048-thread capacity would be demand=1/16).
    """
    engine, share = make_share()
    kernel = share.launch("kernel", work=1.0, demand=1.0)
    share.launch("agent", work=math.inf, demand=0.0625)
    engine.run(until=kernel.done)
    assert engine.now == pytest.approx(1.0625)


def test_undersubscription_runs_everyone_at_full_speed():
    engine, share = make_share()
    a = share.launch("a", work=0.4, demand=0.4)
    b = share.launch("b", work=0.4, demand=0.4)
    engine.run(until=engine.all_of([a.done, b.done]))
    # Total demand 0.8 fits in capacity 1.0: both run unslowed, in parallel.
    assert engine.now == pytest.approx(0.4)


def test_task_arriving_midway_slows_remainder():
    engine, share = make_share()
    first = share.launch("first", work=2.0, demand=1.0)

    def late_arrival(engine, share):
        yield engine.timeout(1.0)
        second = share.launch("second", work=0.5, demand=1.0)
        yield second.done

    engine.process(late_arrival(engine, share))
    engine.run(until=first.done)
    # t in [0,1): first alone, consumes 1.0 of its 2.0.
    # t in [1,2): both share at half speed; second finishes its 0.5 at t=2,
    #            first consumes another 0.5.
    # t in [2,2.5): first alone again, finishes its last 0.5.
    assert engine.now == pytest.approx(2.5)


def test_departures_speed_up_survivors():
    engine, share = make_share()
    short = share.launch("short", work=0.5, demand=1.0)
    long = share.launch("long", work=1.0, demand=1.0)
    engine.run(until=short.done)
    assert engine.now == pytest.approx(1.0)
    engine.run(until=long.done)
    # long had 0.5 consumed at t=1.0; then runs alone.
    assert engine.now == pytest.approx(1.5)


# ---------------------------------------------------------------------------
# Milestones
# ---------------------------------------------------------------------------

def test_milestones_fire_at_progress_points():
    engine, share = make_share()
    task = share.launch("kernel", work=4.0, milestones=[0.25, 0.5, 1.0])
    times = []
    for event in task.milestone_events:
        def record(_event):
            times.append(engine.now)
        assert event.callbacks is not None
        event.callbacks.append(record)
    engine.run(until=task.done)
    assert times == pytest.approx([1.0, 2.0, 4.0])


def test_milestones_shift_under_contention():
    engine, share = make_share()
    task = share.launch("kernel", work=1.0, milestones=[0.5])
    share.launch("other", work=math.inf, demand=1.0)
    milestone = task.milestone_events[0]
    engine.run(until=milestone)
    assert engine.now == pytest.approx(1.0)  # running at half rate


def test_milestone_validation():
    engine, share = make_share()
    with pytest.raises(SimulationError):
        share.launch("bad", work=1.0, milestones=[0.0])
    with pytest.raises(SimulationError):
        share.launch("bad", work=1.0, milestones=[1.5])
    with pytest.raises(SimulationError):
        share.launch("bad", work=1.0, milestones=[0.5, 0.25])
    with pytest.raises(SimulationError):
        share.launch("bad", work=math.inf, milestones=[0.5])


# ---------------------------------------------------------------------------
# Infinite tasks and stop()
# ---------------------------------------------------------------------------

def test_infinite_task_stopped_explicitly():
    engine, share = make_share()
    agent = share.launch("agent", work=math.inf, demand=0.25)

    def stopper(engine, share, agent):
        yield engine.timeout(2.0)
        share.stop(agent)

    engine.process(stopper(engine, share, agent))
    engine.run(until=agent.done)
    assert engine.now == pytest.approx(2.0)
    assert agent.stopped
    assert agent.consumed == pytest.approx(2.0)  # uncontended: full speed


def test_stop_finished_task_rejected():
    engine, share = make_share()
    task = share.launch("t", work=0.1)
    engine.run(until=task.done)
    with pytest.raises(SimulationError):
        share.stop(task)


def test_set_demand_changes_rates():
    engine, share = make_share()
    kernel = share.launch("kernel", work=1.0, demand=1.0)
    agent = share.launch("agent", work=math.inf, demand=1.0)

    def tune(engine, share, agent):
        yield engine.timeout(1.0)
        share.set_demand(agent, 0.000001)

    engine.process(tune(engine, share, agent))
    engine.run(until=kernel.done)
    # First second at rate 0.5, then essentially alone for remaining 0.5.
    assert engine.now == pytest.approx(1.5, rel=1e-3)


def test_validation_errors():
    engine, share = make_share()
    with pytest.raises(SimulationError):
        share.launch("bad", work=-1.0)
    with pytest.raises(SimulationError):
        share.launch("bad", work=1.0, demand=0.0)
    with pytest.raises(SimulationError):
        FluidShare(engine, capacity=0.0)
    task = share.launch("ok", work=10.0)
    with pytest.raises(SimulationError):
        share.set_demand(task, -1.0)


def test_slowdown_reporting():
    engine, share = make_share()
    assert share.slowdown() == 1.0
    share.launch("a", work=10.0, demand=1.0)
    assert share.slowdown() == 1.0
    share.launch("b", work=10.0, demand=0.5)
    assert share.slowdown() == pytest.approx(1.5)


# ---------------------------------------------------------------------------
# Property-based invariants
# ---------------------------------------------------------------------------

@given(works=st.lists(st.floats(min_value=0.01, max_value=5.0),
                      min_size=1, max_size=6))
def test_total_time_equals_total_work_at_full_demand(works):
    """N saturating tasks take exactly sum(work) — conservation of service."""
    engine = Engine()
    share = FluidShare(engine, capacity=1.0)
    tasks = [share.launch(f"t{i}", work=w, demand=1.0)
             for i, w in enumerate(works)]
    engine.run(until=engine.all_of([t.done for t in tasks]))
    assert engine.now == pytest.approx(sum(works), rel=1e-6)


@given(work=st.floats(min_value=0.01, max_value=10.0),
       demand=st.floats(min_value=0.01, max_value=1.0))
def test_solo_task_duration_equals_work(work, demand):
    engine = Engine()
    share = FluidShare(engine, capacity=1.0)
    task = share.launch("t", work=work, demand=demand)
    engine.run(until=task.done)
    assert engine.now == pytest.approx(work, rel=1e-9)


@given(fractions=st.lists(
    st.floats(min_value=0.05, max_value=1.0), min_size=1, max_size=5))
def test_milestones_fire_in_order_and_before_done(fractions):
    engine = Engine()
    share = FluidShare(engine, capacity=1.0)
    milestones = sorted(fractions)
    task = share.launch("t", work=1.0, milestones=milestones)
    fire_times = {}
    for i, event in enumerate(task.milestone_events):
        def record(_event, i=i):
            fire_times[i] = engine.now
        assert event.callbacks is not None
        event.callbacks.append(record)
    engine.run(until=task.done)
    assert len(fire_times) == len(milestones)
    for i, fraction in enumerate(milestones):
        assert fire_times[i] == pytest.approx(fraction, rel=1e-6)
