"""Shared fixtures and helpers for the whole test suite.

The integration tests all want the same three ingredients: a small
Table-I platform (4x Volta is the suite's default), a deterministic
engine at t=0, and fast workload instances whose phase structure is
still representative.  They are defined once here — as plain functions
so tests can parameterize them (``volta_system(dma_engines=2)``), plus
thin pytest fixtures for the common zero-argument cases.
"""

import pytest

from repro.core import GpuPhaseWork, ProactPhaseExecutor
from repro.hw import PLATFORM_4X_VOLTA
from repro.runtime import KernelSpec, System
from repro.sim import Engine
from repro.units import MiB
from repro.workloads import JacobiWorkload, PageRankWorkload

# ---------------------------------------------------------------------------
# Plain helpers (importable: ``from tests.conftest import volta_system``)
# ---------------------------------------------------------------------------


def volta_system(**kwargs):
    """A 4x Volta Table-I system — the suite's default platform."""
    return System(PLATFORM_4X_VOLTA, **kwargs)


def small_pagerank(iterations=3):
    """A PageRank instance small enough for per-test simulation."""
    return PageRankWorkload(num_vertices=2_000_000, num_edges=60_000_000,
                            iterations=iterations)


def small_jacobi(iterations=3):
    """A Jacobi instance small enough for per-test simulation."""
    return JacobiWorkload(num_unknowns=2_000_000, bandwidth=20,
                          iterations=iterations)


def one_producer_phase(system, region_bytes=32 * MiB, num_ctas=8192,
                       flops=None, **work_kwargs):
    """Phase where GPU 0 produces a region for everyone; others idle-ish."""
    gpu = system.gpus[0]
    if flops is None:
        flops = gpu.spec.flops * 2e-3  # a 2 ms kernel
    works = []
    for gpu_id in range(system.num_gpus):
        if gpu_id == 0:
            works.append(GpuPhaseWork(
                kernel=KernelSpec("produce", flops, 0, num_ctas),
                region_bytes=region_bytes, **work_kwargs))
        else:
            works.append(GpuPhaseWork(
                kernel=KernelSpec("other", flops, 0, num_ctas)))
    return works


def run_phase(system, config, works, **executor_kwargs):
    """Execute one PROACT phase to completion; returns its PhaseResult."""
    executor = ProactPhaseExecutor(system, config, **executor_kwargs)
    return system.run(until=executor.execute(works))


# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------


@pytest.fixture
def engine():
    """A fresh deterministic discrete-event engine starting at t=0."""
    return Engine()


@pytest.fixture(name="system")
def system_fixture():
    """A fresh 4x Volta system (one engine, fabric, and devices)."""
    return volta_system()


@pytest.fixture
def producer_phase(system):
    """One-producer phase works matched to the ``system`` fixture."""
    return one_producer_phase(system)
