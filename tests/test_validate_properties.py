"""Property-based invariant suite: random simulations never trip the
sanitizers.

The readiness sanitizer and conservation checker assert orderings and
byte conservation at every phase barrier.  These properties throw
randomized platforms, configs, and phase shapes (from
:mod:`tests.strategies`) at the full stack and require a clean audit
every time — any counterexample hypothesis finds is a real protocol or
accounting bug, shrunk to a minimal reproducer.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ProactPhaseExecutor
from repro.runtime import System
from repro.units import MiB
from repro.validate import validation
from tests.conftest import one_producer_phase
from tests.strategies import (
    collective_specs,
    phase_works,
    platforms,
    proact_configs,
)

# Full-stack simulations per example: keep the example budget small.
fast_settings = settings(
    max_examples=15, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])

pytestmark = pytest.mark.slow


@fast_settings
@given(platform=platforms(), config=proact_configs())
def test_random_decoupled_phases_satisfy_all_invariants(platform, config):
    """Any (platform, config) pair runs a producer phase with zero
    sanitizer violations and conserved link bytes."""
    with validation() as scope:
        system = System(platform)
        executor = ProactPhaseExecutor(system, config)
        works = one_producer_phase(system, region_bytes=4 * MiB)
        system.run(until=executor.execute(works))
        system.finish_validation()
    summary = scope.summary()
    assert summary["violations"] == 0
    assert summary["phases_checked"] == 1
    assert summary["bytes_injected"] == summary["bytes_delivered"] > 0


@fast_settings
@given(platform=platforms(max_gpus=3), config=proact_configs(),
       work=phase_works(max_region=2 * MiB),
       num_phases=st.integers(min_value=1, max_value=3))
def test_random_multi_phase_workloads_stay_clean(platform, config, work,
                                                 num_phases):
    """Randomized producer work across several phases: chunk ids repeat
    per phase and the audit must pass at every barrier."""
    with validation() as scope:
        system = System(platform)
        executor = ProactPhaseExecutor(system, config)
        for _ in range(num_phases):
            works = [work] + [
                one_producer_phase(system)[1]
                for _ in range(system.num_gpus - 1)]
            system.run(until=executor.execute(works))
        system.finish_validation()
    summary = scope.summary()
    assert summary["violations"] == 0
    assert summary["phases_checked"] == num_phases


@fast_settings
@given(spec=collective_specs(max_gpus=4, max_bytes=2 * MiB))
def test_random_collectives_conserve_bytes(spec):
    """Executed collectives agree with their schedules and conserve
    link bytes for every generated spec."""
    from repro.hw import PLATFORM_4X_VOLTA
    from repro.validate import DifferentialOracle
    collective, algorithm, num_gpus, nbytes, chunk_size, root = spec
    result = DifferentialOracle().check_collective(
        PLATFORM_4X_VOLTA, collective, algorithm, nbytes, chunk_size,
        root=root, num_gpus=num_gpus)
    assert result.duration > 0
