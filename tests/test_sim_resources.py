"""Unit tests for Resource, Store, and Counter primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim import Counter, Engine, Resource, Store


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------

def test_resource_grants_up_to_capacity():
    engine = Engine()
    res = Resource(engine, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    engine.run()
    assert r1.processed and r2.processed
    assert not r3.triggered
    assert res.in_use == 2
    assert res.queued == 1


def test_resource_release_wakes_fifo():
    engine = Engine()
    res = Resource(engine, capacity=1)
    order = []

    def user(engine, res, tag, hold):
        yield res.request()
        order.append(f"{tag}:acquired")
        yield engine.timeout(hold)
        res.release()

    engine.process(user(engine, res, "a", 2.0))
    engine.process(user(engine, res, "b", 1.0))
    engine.process(user(engine, res, "c", 1.0))
    engine.run()
    assert order == ["a:acquired", "b:acquired", "c:acquired"]
    assert engine.now == 4.0


def test_resource_over_release_rejected():
    engine = Engine()
    res = Resource(engine)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_zero_capacity_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        Resource(engine, capacity=0)


def test_resource_serializes_contention():
    engine = Engine()
    res = Resource(engine, capacity=1)
    completion_times = []

    def user(engine, res):
        yield res.request()
        yield engine.timeout(1.0)
        res.release()
        completion_times.append(engine.now)

    for _ in range(5):
        engine.process(user(engine, res))
    engine.run()
    assert completion_times == [1.0, 2.0, 3.0, 4.0, 5.0]


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------

def test_store_put_then_get():
    engine = Engine()
    store = Store(engine)
    store.put("item")
    got = store.get()
    engine.run()
    assert got.value == "item"


def test_store_get_blocks_until_put():
    engine = Engine()
    store = Store(engine)
    results = []

    def consumer(engine, store):
        item = yield store.get()
        results.append((item, engine.now))

    def producer(engine, store):
        yield engine.timeout(3.0)
        store.put("late item")

    engine.process(consumer(engine, store))
    engine.process(producer(engine, store))
    engine.run()
    assert results == [("late item", 3.0)]


def test_store_fifo_ordering():
    engine = Engine()
    store = Store(engine)
    for i in range(3):
        store.put(i)
    taken = []

    def consumer(engine, store):
        for _ in range(3):
            item = yield store.get()
            taken.append(item)

    engine.process(consumer(engine, store))
    engine.run()
    assert taken == [0, 1, 2]


def test_store_capacity_blocks_put():
    engine = Engine()
    store = Store(engine, capacity=1)
    timeline = []

    def producer(engine, store):
        for i in range(2):
            yield store.put(i)
            timeline.append(("put", i, engine.now))

    def consumer(engine, store):
        yield engine.timeout(5.0)
        item = yield store.get()
        timeline.append(("got", item, engine.now))

    engine.process(producer(engine, store))
    engine.process(consumer(engine, store))
    engine.run()
    assert ("put", 0, 0.0) in timeline
    assert ("put", 1, 5.0) in timeline  # blocked until the get


def test_store_try_get():
    engine = Engine()
    store = Store(engine)
    assert store.try_get() is None
    store.put("x")
    assert store.try_get() == "x"
    assert store.try_get() is None


def test_store_len_and_items():
    engine = Engine()
    store = Store(engine)
    store.put("a")
    store.put("b")
    assert len(store) == 2
    assert store.items == ("a", "b")


def test_store_invalid_capacity_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        Store(engine, capacity=0)


# ---------------------------------------------------------------------------
# Counter
# ---------------------------------------------------------------------------

def test_counter_add_sub():
    engine = Engine()
    counter = Counter(engine, initial=5)
    assert counter.sub(2) == 3
    assert counter.add(1) == 4
    assert counter.level == 4


def test_counter_wait_at_least():
    engine = Engine()
    counter = Counter(engine)
    woken = []

    def waiter(engine, counter):
        level = yield counter.wait_at_least(3)
        woken.append((level, engine.now))

    def producer(engine, counter):
        for _ in range(3):
            yield engine.timeout(1.0)
            counter.add()

    engine.process(waiter(engine, counter))
    engine.process(producer(engine, counter))
    engine.run()
    assert woken == [(3, 3.0)]


def test_counter_wait_at_most_models_decrement_to_zero():
    engine = Engine()
    counter = Counter(engine, initial=4)  # like 4 CTAs writing one chunk
    triggered = []

    def transfer_agent(engine, counter):
        yield counter.wait_at_most(0)
        triggered.append(engine.now)

    def cta(engine, counter, finish_at):
        yield engine.timeout(finish_at)
        counter.sub()

    engine.process(transfer_agent(engine, counter))
    for finish in (1.0, 2.0, 2.5, 7.0):
        engine.process(cta(engine, counter, finish))
    engine.run()
    assert triggered == [7.0]


def test_counter_wait_already_satisfied():
    engine = Engine()
    counter = Counter(engine, initial=10)
    event = counter.wait_at_least(5)
    assert event.triggered
    assert event.value == 10
