"""Integration tests for the five communication paradigms."""

import pytest

from repro.core import MECH_CDP, MECH_INLINE, ProactConfig
from repro.hw import PLATFORM_4X_KEPLER, PLATFORM_4X_VOLTA
from repro.paradigms import (
    BulkMemcpyParadigm,
    InfiniteBandwidthParadigm,
    ProactDecoupledParadigm,
    ProactInlineParadigm,
    UnifiedMemoryParadigm,
)
from repro.units import KiB, MiB
from repro.workloads import JacobiWorkload, PageRankWorkload
from tests.conftest import small_jacobi, small_pagerank


def run_all(workload, platform):
    return {
        "memcpy": BulkMemcpyParadigm().execute(workload, platform),
        "um": UnifiedMemoryParadigm().execute(workload, platform),
        "inline": ProactInlineParadigm().execute(workload, platform),
        "decoupled": ProactDecoupledParadigm().execute(workload, platform),
        "infinite": InfiniteBandwidthParadigm().execute(workload, platform),
    }


def test_infinite_bw_is_fastest_and_moves_no_wire_bytes():
    results = run_all(small_pagerank(), PLATFORM_4X_VOLTA)
    infinite = results.pop("infinite")
    assert infinite.wire_bytes == 0
    for name, result in results.items():
        assert infinite.runtime < result.runtime, name


def test_result_metadata():
    result = BulkMemcpyParadigm().execute(small_pagerank(),
                                          PLATFORM_4X_VOLTA)
    assert result.paradigm == "cudaMemcpy"
    assert result.platform == "4x_volta"
    assert result.workload == "Pagerank"
    assert len(result.phase_durations) == 3
    assert result.runtime == pytest.approx(sum(result.phase_durations),
                                           rel=0.05)


def test_memcpy_moves_full_duplication_volume():
    workload = small_pagerank()
    result = BulkMemcpyParadigm().execute(workload, PLATFORM_4X_VOLTA)
    vertices_per_gpu = 2_000_000 // 4
    # 2 communicating phases (last is stripped) x 4 GPUs x 3 peers.
    expected = vertices_per_gpu * 8 * 4 * 3 * 2
    assert result.bytes_moved == expected
    assert result.interconnect_efficiency > 0.85  # bulk DMA framing


def test_inline_wire_efficiency_reflects_locality():
    volta = PLATFORM_4X_VOLTA
    sporadic = ProactInlineParadigm().execute(small_pagerank(), volta)
    dense = ProactInlineParadigm().execute(small_jacobi(), volta)
    assert sporadic.interconnect_efficiency < 0.35
    assert dense.interconnect_efficiency > 0.6


def test_decoupled_always_transfers_efficiently():
    result = ProactDecoupledParadigm().execute(small_pagerank(),
                                               PLATFORM_4X_VOLTA)
    assert result.interconnect_efficiency > 0.8


def test_decoupled_rejects_inline_config():
    with pytest.raises(ValueError):
        ProactDecoupledParadigm(ProactConfig(MECH_INLINE, 64 * KiB, 256))


def test_decoupled_respects_explicit_config():
    config = ProactConfig(MECH_CDP, 1 * MiB, 512)
    paradigm = ProactDecoupledParadigm(config)
    assert paradigm.config is config
    result = paradigm.execute(small_pagerank(), PLATFORM_4X_VOLTA)
    assert result.runtime > 0


def test_um_fault_storms_hurt_sporadic_workloads():
    workload = small_pagerank()  # hint fraction 0.2: mostly faults
    volta = PLATFORM_4X_VOLTA
    um = UnifiedMemoryParadigm().execute(workload, volta)
    memcpy = BulkMemcpyParadigm().execute(workload, volta)
    assert um.runtime > 1.5 * memcpy.runtime
    assert um.details["pages_faulted"] > 0


def test_um_behaves_like_prefetch_for_hintable_workloads():
    workload = small_jacobi()  # hint fraction 0.9, touch fraction 0.3
    volta = PLATFORM_4X_VOLTA
    um = UnifiedMemoryParadigm().execute(workload, volta)
    memcpy = BulkMemcpyParadigm().execute(workload, volta)
    assert um.runtime < memcpy.runtime  # touch-only migration wins


def test_um_legacy_path_on_kepler():
    workload = small_jacobi()
    result = UnifiedMemoryParadigm().execute(workload, PLATFORM_4X_KEPLER)
    # Legacy mirroring never faults (no fault hardware before Pascal).
    assert result.details["pages_faulted"] == 0
    assert result.details["bytes_migrated"] > 0


def test_elide_transfers_paradigm_moves_nothing():
    result = ProactDecoupledParadigm(elide_transfers=True).execute(
        small_pagerank(), PLATFORM_4X_VOLTA)
    assert result.wire_bytes == 0
    assert result.runtime > 0


def test_exposed_transfer_time_recorded():
    result = ProactDecoupledParadigm().execute(small_pagerank(),
                                               PLATFORM_4X_VOLTA)
    assert "exposed_transfer_time" in result.details
    assert result.details["exposed_transfer_time"] >= 0.0


def test_proact_beats_memcpy_on_communication_bound_app():
    workload = small_pagerank()
    volta = PLATFORM_4X_VOLTA
    decoupled = ProactDecoupledParadigm().execute(workload, volta)
    memcpy = BulkMemcpyParadigm().execute(workload, volta)
    assert decoupled.runtime < memcpy.runtime


def test_proact_auto_profiles_then_runs():
    from repro.core import Profiler
    from repro.paradigms import ProactAutoParadigm
    from repro.units import KiB, MiB

    profiler = Profiler(PLATFORM_4X_VOLTA,
                        chunk_sizes=(128 * KiB, 1 * MiB),
                        thread_counts=(1024, 2048))
    paradigm = ProactAutoParadigm(profiler=profiler)
    workload = small_pagerank()
    result = paradigm.execute(workload, PLATFORM_4X_VOLTA)
    assert result.paradigm == "PROACT"
    assert paradigm.chosen_config is not None
    # Auto must do at least as well as the fixed default decoupled
    # config it had available in its search space.
    default = ProactDecoupledParadigm().execute(workload, PLATFORM_4X_VOLTA)
    assert result.runtime <= default.runtime * 1.05


def test_mean_link_utilization_reported():
    result = BulkMemcpyParadigm().execute(small_pagerank(),
                                          PLATFORM_4X_VOLTA)
    assert 0.0 < result.details["mean_link_utilization"] <= 1.0
    assert (result.details["peak_link_utilization"]
            >= result.details["mean_link_utilization"])


def test_proact_smooths_interconnect_utilization():
    """PROACT spreads transfers across the whole runtime; bulk copies
    burst after kernels, leaving links idle during compute."""
    workload = small_pagerank()
    bulk = BulkMemcpyParadigm().execute(workload, PLATFORM_4X_VOLTA)
    proact = ProactDecoupledParadigm().execute(workload, PLATFORM_4X_VOLTA)
    # Same bytes, but bulk crams them into a shorter window of a longer
    # runtime: its time-averaged utilization is lower.
    assert (proact.details["mean_link_utilization"]
            > bulk.details["mean_link_utilization"])
