"""Public-API surface tests: snapshot + deprecation contract.

The checked-in snapshot (``tests/data/public_api.json``) records the
package's advertised surface — ``repro.__all__`` plus every public
method signature on :class:`repro.api.Session`.  CI fails when the
surface drifts, so renames and signature changes are always a conscious,
reviewed decision.  After an intentional change, regenerate with::

    PYTHONPATH=src python tests/test_public_api.py --regen

The deprecation tests pin the compatibility contract of PR 5's facade
redesign: the legacy entry points still work but warn, and the
supported paths stay warning-free.
"""

import inspect
import json
import pathlib
import warnings

import pytest

import repro
import repro.api
from repro.api import Session

SNAPSHOT_PATH = pathlib.Path(__file__).parent / "data" / "public_api.json"


def current_surface():
    """The live public surface, in the snapshot's JSON shape."""
    methods = {}
    for name, member in inspect.getmembers(Session):
        if name.startswith("_") and name != "__init__":
            continue
        if callable(member):
            methods[name] = str(inspect.signature(member))
        elif isinstance(inspect.getattr_static(Session, name), property):
            methods[name] = "<property>"
    return {
        "repro_all": sorted(repro.__all__),
        "repro_api_all": sorted(repro.api.__all__),
        "session": methods,
    }


def load_snapshot():
    return json.loads(SNAPSHOT_PATH.read_text())


def test_snapshot_file_exists():
    assert SNAPSHOT_PATH.exists(), (
        "missing public-API snapshot; generate it with "
        "`PYTHONPATH=src python tests/test_public_api.py --regen`")


def test_public_surface_matches_snapshot():
    """Any drift in repro.__all__ or Session's signatures fails here."""
    snapshot = load_snapshot()
    surface = current_surface()
    assert surface == snapshot, (
        "public API surface drifted from tests/data/public_api.json; "
        "if the change is intentional, regenerate the snapshot with "
        "`PYTHONPATH=src python tests/test_public_api.py --regen` "
        "and include it in the same commit")


def test_all_names_importable():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists missing {name!r}"


def test_session_is_front_door():
    assert repro.Session is Session
    assert repro.__all__[0] == "Session"


# ----------------------------------------------------------------------
# Deprecation contract
# ----------------------------------------------------------------------
def test_from_name_warns_but_works():
    with pytest.warns(DeprecationWarning, match="Session"):
        system = repro.System.from_name("4x_volta")
    assert system.num_gpus == 4


def test_attach_validation_warns_but_works():
    system = repro.System(repro.platform_by_name("4x_volta"))
    with pytest.warns(DeprecationWarning, match="validate=True"):
        sanitizer = system.attach_validation()
    assert sanitizer.enabled
    assert system.validating


def test_finish_hooks_warn_but_work():
    system = repro.System(repro.platform_by_name("4x_volta"))
    with pytest.warns(DeprecationWarning, match="Session"):
        system.finish_observation()
    with pytest.warns(DeprecationWarning, match="Session"):
        system.finish_validation()


def test_session_paths_do_not_warn():
    """The supported facade never routes through deprecated shims."""
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        session = Session("4x_volta", validate=True, trace=True)
        system = session.system()
        kernel = system.devices[0].launch_kernel("k", work=1e-5)
        system.run(until=kernel.done)
        session.finish(system)
        assert session.validation_summary()["violations"] == 0


if __name__ == "__main__":
    import sys
    if "--regen" in sys.argv:
        SNAPSHOT_PATH.parent.mkdir(parents=True, exist_ok=True)
        SNAPSHOT_PATH.write_text(
            json.dumps(current_surface(), indent=2, sort_keys=True) + "\n")
        print(f"wrote {SNAPSHOT_PATH}")
    else:
        print(__doc__)
