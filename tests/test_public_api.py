"""Public-API surface tests: snapshot + deprecation contract.

The checked-in snapshot (``tests/data/public_api.json``) records the
package's advertised surface — ``repro.__all__`` plus every public
method signature on :class:`repro.api.Session`.  CI fails when the
surface drifts, so renames and signature changes are always a conscious,
reviewed decision.  After an intentional change, regenerate with::

    PYTHONPATH=src python tests/test_public_api.py --regen

The deprecation tests pin the compatibility contract of PR 5's facade
redesign: the legacy entry points still work but warn, and the
supported paths stay warning-free.
"""

import inspect
import json
import pathlib
import warnings

import pytest

import repro
import repro.ablation
import repro.api
from repro.api import Session
from repro.core.config import Mechanisms

SNAPSHOT_PATH = pathlib.Path(__file__).parent / "data" / "public_api.json"


def current_surface():
    """The live public surface, in the snapshot's JSON shape."""
    methods = {}
    for name, member in inspect.getmembers(Session):
        if name.startswith("_") and name != "__init__":
            continue
        if callable(member):
            methods[name] = str(inspect.signature(member))
        elif isinstance(inspect.getattr_static(Session, name), property):
            methods[name] = "<property>"
    return {
        "repro_all": sorted(repro.__all__),
        "repro_ablation_all": sorted(repro.ablation.__all__),
        "repro_api_all": sorted(repro.api.__all__),
        "mechanisms": sorted(Mechanisms.component_names()),
        "session": methods,
    }


def load_snapshot():
    return json.loads(SNAPSHOT_PATH.read_text())


def test_snapshot_file_exists():
    assert SNAPSHOT_PATH.exists(), (
        "missing public-API snapshot; generate it with "
        "`PYTHONPATH=src python tests/test_public_api.py --regen`")


def test_public_surface_matches_snapshot():
    """Any drift in repro.__all__ or Session's signatures fails here."""
    snapshot = load_snapshot()
    surface = current_surface()
    assert surface == snapshot, (
        "public API surface drifted from tests/data/public_api.json; "
        "if the change is intentional, regenerate the snapshot with "
        "`PYTHONPATH=src python tests/test_public_api.py --regen` "
        "and include it in the same commit")


def test_all_names_importable():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists missing {name!r}"


def test_session_is_front_door():
    assert repro.Session is Session
    assert repro.__all__[0] == "Session"


def test_mechanisms_surface_exported():
    """The mechanism-toggle API and ablation harness are first-class."""
    assert "Mechanisms" in repro.__all__
    assert "DEFAULT_MECHANISMS" in repro.__all__
    assert repro.Mechanisms is Mechanisms
    for name in ("AblationRun", "AblationReport", "generate_runset",
                 "run_ablation"):
        assert name in repro.__all__
        assert getattr(repro, name) is getattr(repro.ablation, name)


def test_session_accepts_mechanisms():
    session = Session("4x_volta",
                      mechanisms=Mechanisms(write_coalescing=False))
    assert session.mechanisms.ablated == ("write_coalescing",)
    assert "write_coalescing" in repr(session)


# ----------------------------------------------------------------------
# Deprecation contract
# ----------------------------------------------------------------------
def test_from_name_warns_but_works():
    with pytest.warns(DeprecationWarning, match="Session"):
        system = repro.System.from_name("4x_volta")
    assert system.num_gpus == 4


def test_attach_validation_warns_but_works():
    system = repro.System(repro.platform_by_name("4x_volta"))
    with pytest.warns(DeprecationWarning, match="validate=True"):
        sanitizer = system.attach_validation()
    assert sanitizer.enabled
    assert system.validating


def test_finish_hooks_warn_but_work():
    system = repro.System(repro.platform_by_name("4x_volta"))
    with pytest.warns(DeprecationWarning, match="Session"):
        system.finish_observation()
    with pytest.warns(DeprecationWarning, match="Session"):
        system.finish_validation()


def test_proact_config_validate_warns_but_works():
    import dataclasses

    from repro.core.config import DEFAULT_CONFIG
    with pytest.warns(DeprecationWarning, match="validate=True"):
        config = dataclasses.replace(DEFAULT_CONFIG, validate=True)
    assert config.validate


def test_paradigm_instrument_warns_but_works():
    from repro.paradigms import ProactDecoupledParadigm
    with pytest.warns(DeprecationWarning, match="readiness_tracking"):
        paradigm = ProactDecoupledParadigm(instrument=False)
    assert paradigm.instrument is False


def test_context_profile_kwargs_warn_but_work():
    from repro.experiments.registry import ExperimentContext, ProfilePolicy
    with pytest.warns(DeprecationWarning, match="ProfilePolicy"):
        ctx = ExperimentContext(profile_strategy="search", profile_jobs=2)
    assert ctx.profile == ProfilePolicy(strategy="search", jobs=2)
    # Mirrored legacy readers keep working.
    assert ctx.profile_strategy == "search"
    assert ctx.profile_jobs == 2


def test_context_profile_policy_does_not_warn():
    from repro.experiments.registry import ExperimentContext, ProfilePolicy
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        ctx = ExperimentContext(
            profile=ProfilePolicy(strategy="search", jobs=2))
    assert ctx.profile_strategy == "search"
    assert ctx.profile_jobs == 2


def test_session_paths_do_not_warn():
    """The supported facade never routes through deprecated shims."""
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        session = Session("4x_volta", validate=True, trace=True)
        system = session.system()
        kernel = system.devices[0].launch_kernel("k", work=1e-5)
        system.run(until=kernel.done)
        session.finish(system)
        assert session.validation_summary()["violations"] == 0


if __name__ == "__main__":
    import sys
    if "--regen" in sys.argv:
        SNAPSHOT_PATH.parent.mkdir(parents=True, exist_ok=True)
        SNAPSHOT_PATH.write_text(
            json.dumps(current_surface(), indent=2, sort_keys=True) + "\n")
        print(f"wrote {SNAPSHOT_PATH}")
    else:
        print(__doc__)
