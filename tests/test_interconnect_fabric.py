"""Unit tests for fabric topologies built from Table I specs."""

import pytest

from repro.errors import ConfigurationError
from repro.interconnect import (
    NVLINK1,
    NVLINK2,
    NVSWITCH,
    PCIE3,
    Fabric,
)
from repro.sim import Engine


# ---------------------------------------------------------------------------
# Topology construction
# ---------------------------------------------------------------------------

def test_pcie_tree_link_count():
    fabric = Fabric(Engine(), PCIE3, num_gpus=4)
    # One up + one down link per GPU.
    assert len(fabric.links) == 8


def test_all_to_all_link_count():
    fabric = Fabric(Engine(), NVLINK1, num_gpus=4)
    # A unidirectional link per ordered GPU pair.
    assert len(fabric.links) == 4 * 3


def test_switch_link_count():
    fabric = Fabric(Engine(), NVSWITCH, num_gpus=16)
    assert len(fabric.links) == 32


def test_single_gpu_fabric_has_no_links():
    fabric = Fabric(Engine(), NVLINK2, num_gpus=1)
    assert fabric.links == []


def test_zero_gpus_rejected():
    with pytest.raises(ConfigurationError):
        Fabric(Engine(), NVLINK2, num_gpus=0)


# ---------------------------------------------------------------------------
# Bandwidth partitioning (Table I aggregate figures)
# ---------------------------------------------------------------------------

def test_pcie_p2p_bandwidth_is_half_bidir():
    fabric = Fabric(Engine(), PCIE3, num_gpus=4)
    assert fabric.peak_p2p_bandwidth(0, 1) == pytest.approx(8e9)


def test_nvlink_mesh_divides_bandwidth_among_peers():
    fabric = Fabric(Engine(), NVLINK1, num_gpus=4)
    # 150 GB/s bidir aggregate -> 75 GB/s per direction -> /3 peers.
    assert fabric.peak_p2p_bandwidth(0, 1) == pytest.approx(25e9)


def test_nvlink2_mesh_bandwidth():
    fabric = Fabric(Engine(), NVLINK2, num_gpus=4)
    assert fabric.peak_p2p_bandwidth(0, 1) == pytest.approx(50e9)


def test_nvswitch_full_bandwidth_per_pair():
    fabric = Fabric(Engine(), NVSWITCH, num_gpus=16)
    # Crossbar: any pair can use the full per-direction rate.
    assert fabric.peak_p2p_bandwidth(0, 15) == pytest.approx(150e9)


# ---------------------------------------------------------------------------
# Routing behaviour
# ---------------------------------------------------------------------------

def test_route_to_self_rejected():
    fabric = Fabric(Engine(), NVLINK1, num_gpus=4)
    with pytest.raises(ConfigurationError):
        fabric.route(2, 2)


def test_route_out_of_range_rejected():
    fabric = Fabric(Engine(), NVLINK1, num_gpus=4)
    with pytest.raises(ConfigurationError):
        fabric.route(0, 7)


def test_send_moves_bytes():
    engine = Engine()
    fabric = Fabric(engine, NVLINK2, num_gpus=4)
    receipt = engine.run(until=fabric.send(0, 1, 1 << 20, access_size=256))
    assert receipt.payload_bytes == 1 << 20
    assert fabric.total_goodput_bytes() == 1 << 20
    assert fabric.total_wire_bytes() > 1 << 20
    assert 0.8 < fabric.observed_efficiency() < 1.0


def test_mesh_pairs_do_not_contend():
    """Disjoint GPU pairs on an all-to-all mesh transfer independently."""
    engine = Engine()
    fabric = Fabric(engine, NVLINK2, num_gpus=4)
    payload = 4 << 20
    d1 = fabric.send(0, 1, payload, 256)
    d2 = fabric.send(2, 3, payload, 256)
    engine.run(until=engine.all_of([d1, d2]))
    parallel_time = engine.now

    engine2 = Engine()
    fabric2 = Fabric(engine2, NVLINK2, num_gpus=4)
    engine2.run(until=fabric2.send(0, 1, payload, 256))
    solo_time = engine2.now
    assert parallel_time == pytest.approx(solo_time, rel=0.01)


def test_pcie_tree_shares_source_uplink():
    """Two transfers from one GPU to different peers share its uplink."""
    engine = Engine()
    fabric = Fabric(engine, PCIE3, num_gpus=4)
    payload = 4 << 20
    d1 = fabric.send(0, 1, payload, 256)
    d2 = fabric.send(0, 2, payload, 256)
    engine.run(until=engine.all_of([d1, d2]))
    shared_time = engine.now

    engine2 = Engine()
    fabric2 = Fabric(engine2, PCIE3, num_gpus=4)
    engine2.run(until=fabric2.send(0, 1, payload, 256))
    solo_time = engine2.now
    assert shared_time == pytest.approx(2 * solo_time, rel=0.05)


def test_infinite_fabric_transfers_cost_nothing():
    engine = Engine()
    fabric = Fabric(engine, NVLINK2, num_gpus=4, infinite=True)
    engine.run(until=fabric.send(0, 1, 1 << 30, access_size=4))
    assert engine.now == 0.0


def test_broadcast_from_one_gpu_on_switch_is_serialized_by_uplink():
    """On NVSwitch, a GPU duplicating data to all peers is uplink-bound."""
    engine = Engine()
    fabric = Fabric(engine, NVSWITCH, num_gpus=4)
    payload = 8 << 20
    sends = [fabric.send(0, dst, payload, 256) for dst in (1, 2, 3)]
    engine.run(until=engine.all_of(sends))
    wire = NVSWITCH.fmt.message_wire_bytes(payload, 256)
    expected = 3 * wire / 150e9
    assert engine.now == pytest.approx(expected, rel=0.05)
