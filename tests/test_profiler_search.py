"""Property tests: the search autotuner returns the exhaustive argmin.

``Profiler.search`` (and ``search="search"``) certifies its winner
against the infinite-bandwidth floors, so on any grid small enough to
also brute force, its chosen configuration — and the bitwise runtime —
must equal the exhaustive sweep's, for random platforms, grids, and
workloads.  The randomized shapes come from :mod:`tests.strategies`.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import Session
from repro.core import ParallelProfiler, Profiler
from repro.hw import PLATFORM_4X_VOLTA
from repro.units import KiB, MiB
from tests.conftest import small_jacobi, small_pagerank
from tests.strategies import platforms

GRIDS = (
    ((128 * KiB, 1 * MiB), (1024, 4096)),
    ((64 * KiB, 512 * KiB, 4 * MiB), (512, 2048)),
    ((256 * KiB, 4 * MiB), (2048, 8192)),
)

WORKLOADS = (
    lambda: small_pagerank(iterations=2),
    lambda: small_jacobi(iterations=2),
)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(platform=platforms(min_gpus=2, max_gpus=4),
       grid=st.sampled_from(GRIDS),
       make_workload=st.sampled_from(WORKLOADS))
def test_search_returns_exhaustive_argmin(platform, grid, make_workload):
    """Search argmin == brute-force argmin, config and bitwise runtime."""
    chunks, threads = grid
    builder = make_workload().phase_builder()
    brute = Profiler(platform, chunk_sizes=chunks, thread_counts=threads,
                     search="exhaustive").profile(builder)
    searched = Profiler(platform, chunk_sizes=chunks, thread_counts=threads,
                        search="search").profile(builder)

    assert searched.best.config == brute.best.config
    assert searched.best.runtime == brute.best.runtime  # bitwise

    # Every configuration the search did measure agrees bitwise with
    # brute force, and the bookkeeping covers the whole grid.
    brute_by_config = {e.config: e.runtime for e in brute.entries}
    for entry in searched.entries:
        assert brute_by_config[entry.config] == entry.runtime
    assert (len(searched.entries) + searched.pruned_configs
            == len(brute.entries))
    assert searched.floor_runs == len(brute.entries)


def test_search_method_works_from_any_mode():
    """``profiler.search(...)`` is callable regardless of the configured
    search mode and matches ``Profiler(search="search").profile``."""
    chunks, threads = (128 * KiB, 1 * MiB), (1024, 4096)
    builder = small_pagerank(iterations=2).phase_builder()
    coordinate = Profiler(PLATFORM_4X_VOLTA, chunk_sizes=chunks,
                          thread_counts=threads)
    via_method = coordinate.search(builder)
    via_mode = Profiler(PLATFORM_4X_VOLTA, chunk_sizes=chunks,
                        thread_counts=threads,
                        search="search").profile(builder)
    assert via_method.best == via_mode.best
    assert via_method.entries == via_mode.entries


def test_parallel_search_picks_identical_argmin():
    """The warm-worker backend may measure a different entry set, but
    the certified winner (config and bitwise runtime) must not move."""
    chunks, threads = (64 * KiB, 512 * KiB, 4 * MiB), (512, 2048)
    builder = small_pagerank(iterations=2).phase_builder()
    serial = Profiler(PLATFORM_4X_VOLTA, chunk_sizes=chunks,
                      thread_counts=threads,
                      search="search").profile(builder)
    parallel = ParallelProfiler(PLATFORM_4X_VOLTA, chunk_sizes=chunks,
                                thread_counts=threads, search="search",
                                jobs=2).profile(builder)
    assert parallel.best.config == serial.best.config
    assert parallel.best.runtime == serial.best.runtime


def test_session_profile_strategy_search():
    """``Session.profile(strategy="search")`` routes to the autotuner
    and agrees with the exhaustive session sweep."""
    session = Session("4x_volta")
    kwargs = dict(chunk_sizes=(128 * KiB, 1 * MiB),
                  thread_counts=(1024, 4096))
    brute = session.profile(small_pagerank(iterations=2),
                            search="exhaustive", **kwargs)
    searched = session.profile(small_pagerank(iterations=2),
                               strategy="search", **kwargs)
    assert searched.best.config == brute.best.config
    assert searched.best.runtime == brute.best.runtime
    assert searched.pruned_configs >= 0


def test_search_signature_namespaces_the_mode():
    """Search sweeps must not share profile-store entries with other
    modes over the same grid."""
    kwargs = dict(chunk_sizes=(128 * KiB, 1 * MiB),
                  thread_counts=(1024, 4096))
    searched = Profiler(PLATFORM_4X_VOLTA, search="search", **kwargs)
    brute = Profiler(PLATFORM_4X_VOLTA, search="exhaustive", **kwargs)
    coordinate = Profiler(PLATFORM_4X_VOLTA, **kwargs)
    assert searched.sweep_signature() != brute.sweep_signature()
    assert searched.sweep_signature() != coordinate.sweep_signature()


@pytest.mark.slow
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(platform=platforms(min_gpus=2, max_gpus=4),
       grid=st.sampled_from(GRIDS),
       make_workload=st.sampled_from(WORKLOADS))
def test_search_argmin_exhaustive_slow(platform, grid, make_workload):
    """Nightly-depth version of the argmin property (more examples)."""
    chunks, threads = grid
    builder = make_workload().phase_builder()
    brute = Profiler(platform, chunk_sizes=chunks, thread_counts=threads,
                     search="exhaustive").profile(builder)
    searched = Profiler(platform, chunk_sizes=chunks, thread_counts=threads,
                        search="search").profile(builder)
    assert searched.best.config == brute.best.config
    assert searched.best.runtime == brute.best.runtime
