"""Unit tests for links, routes, and transfer accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.interconnect import NVLINK_FORMAT, PCIE3_FORMAT, Link
from repro.interconnect.route import InfiniteRoute, Route
from repro.sim import Engine


def make_link(engine, bandwidth=1e9, fmt=NVLINK_FORMAT, quantum=64 * 1024,
              name="test-link"):
    return Link(engine, name, bandwidth, fmt, quantum)


# ---------------------------------------------------------------------------
# Link basics
# ---------------------------------------------------------------------------

def test_link_rejects_bad_parameters():
    engine = Engine()
    with pytest.raises(ConfigurationError):
        Link(engine, "l", 0.0, NVLINK_FORMAT)
    with pytest.raises(ConfigurationError):
        Link(engine, "l", 1e9, NVLINK_FORMAT, quantum=0)


def test_link_service_time():
    engine = Engine()
    link = make_link(engine, bandwidth=1e9)
    assert link.service_time(1_000_000) == pytest.approx(1e-3)


def test_link_efficiency_accounting():
    engine = Engine()
    link = make_link(engine)
    assert link.efficiency() == 0.0
    link.account(0.0, 1.0, goodput=80, wire=100)
    assert link.efficiency() == pytest.approx(0.8)
    assert link.utilization(over_seconds=2.0) == pytest.approx(0.5)


# ---------------------------------------------------------------------------
# Route transfers
# ---------------------------------------------------------------------------

def test_route_transfer_duration_includes_overhead_and_latency():
    engine = Engine()
    link = make_link(engine, bandwidth=1e9, quantum=1 << 30)
    route = Route(engine, 0, 1, [link], latency=1e-6)
    payload = 256 * 1024
    done = route.transfer(payload, access_size=256)
    receipt = engine.run(until=done)
    wire = NVLINK_FORMAT.message_wire_bytes(payload, 256)
    assert receipt.wire_bytes == wire
    assert receipt.duration == pytest.approx(wire / 1e9 + 1e-6)


def test_route_transfer_fine_grained_is_slower():
    def timed(access_size):
        engine = Engine()
        link = make_link(engine, bandwidth=1e9)
        route = Route(engine, 0, 1, [link], latency=0.0)
        done = route.transfer(1024 * 1024, access_size=access_size)
        receipt = engine.run(until=done)
        return receipt.duration

    assert timed(4) > 5 * timed(256)


def test_route_two_links_bottlenecked_by_slowest():
    engine = Engine()
    fast = make_link(engine, bandwidth=10e9, name="fast")
    slow = make_link(engine, bandwidth=1e9, name="slow")
    route = Route(engine, 0, 1, [fast, slow], latency=0.0)
    assert route.bottleneck_bandwidth == 1e9
    done = route.transfer(1024 * 1024, access_size=256)
    receipt = engine.run(until=done)
    wire = NVLINK_FORMAT.message_wire_bytes(1024 * 1024, 256)
    assert receipt.duration == pytest.approx(wire / 1e9, rel=0.01)


def test_concurrent_transfers_share_link():
    engine = Engine()
    link = make_link(engine, bandwidth=1e9, quantum=16 * 1024)
    route = Route(engine, 0, 1, [link], latency=0.0)
    payload = 512 * 1024
    done_a = route.transfer(payload, access_size=256)
    done_b = route.transfer(payload, access_size=256)
    both = engine.all_of([done_a, done_b])
    engine.run(until=both)
    wire = NVLINK_FORMAT.message_wire_bytes(payload, 256)
    # Two equal flows on one link take twice the solo time in total.
    assert engine.now == pytest.approx(2 * wire / 1e9, rel=0.02)
    # And they interleave: both complete near the end, not one at halftime.
    assert done_a.value.end_time > 0.9 * engine.now


def test_transfer_accounts_link_stats():
    engine = Engine()
    link = make_link(engine)
    route = Route(engine, 0, 1, [link], latency=0.0)
    engine.run(until=route.transfer(100_000, access_size=128))
    assert link.goodput_bytes == 100_000
    assert link.wire_bytes == NVLINK_FORMAT.message_wire_bytes(100_000, 128)
    assert 0.0 < link.efficiency() < 1.0


def test_zero_byte_transfer_completes_immediately():
    engine = Engine()
    link = make_link(engine)
    route = Route(engine, 0, 1, [link], latency=1e-6)
    receipt = engine.run(until=route.transfer(0, access_size=128))
    assert receipt.payload_bytes == 0
    assert receipt.wire_bytes == 0
    assert engine.now == 0.0  # no latency charged when nothing moves


def test_route_validation():
    engine = Engine()
    link = make_link(engine)
    with pytest.raises(ConfigurationError):
        Route(engine, 0, 1, [], latency=0.0)
    with pytest.raises(ConfigurationError):
        Route(engine, 0, 1, [link], latency=-1.0)
    route = Route(engine, 0, 1, [link], latency=0.0)
    with pytest.raises(ConfigurationError):
        route.transfer(-1, access_size=4)
    with pytest.raises(ConfigurationError):
        route.transfer(100, access_size=0)


def test_infinite_route_is_instantaneous():
    engine = Engine()
    link = make_link(engine)
    route = InfiniteRoute(engine, 0, 1, link)
    receipt = engine.run(until=route.transfer(1 << 30, access_size=4))
    assert engine.now == 0.0
    assert receipt.payload_bytes == 1 << 30
    assert receipt.wire_bytes == 0


def test_pcie_format_transfer_uses_pcie_framing():
    engine = Engine()
    link = make_link(engine, fmt=PCIE3_FORMAT)
    route = Route(engine, 0, 1, [link], latency=0.0)
    engine.run(until=route.transfer(4096, access_size=4))
    assert link.wire_bytes == PCIE3_FORMAT.message_wire_bytes(4096, 4)
