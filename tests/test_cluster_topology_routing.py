"""Cluster routing invariants: symmetry, NIC traversal, disjointness.

The hierarchical collective leans on the same structural properties the
flat topologies pin down in ``test_fabric_topology_routing.py``, plus
the node-boundary contract: every cross-node route crosses exactly one
source NIC and one destination NIC, intra-node routes never touch a
NIC, and the fat-tree's dedicated per-node core links keep node-disjoint
routes link-disjoint.
"""

import itertools

import pytest

from repro.cluster import (
    HDR200_NIC,
    NodeSpec,
    TORUS_2D,
    TORUS_3D,
    cluster_platform,
    torus_dims,
)
from repro.hw.specs import VOLTA_V100
from repro.interconnect.specs import NVSWITCH
from repro.runtime.system import System

#: A small node keeps exhaustive pair walks cheap (4 GPUs vs. DGX-2's 16).
QUAD_NODE = NodeSpec(name="quad", gpu=VOLTA_V100, interconnect=NVSWITCH,
                     gpus_per_node=4, nic=HDR200_NIC)

#: (num_nodes, inter-node spec) for the parametrized invariants.
CLUSTERS = (
    (2, None),          # minimal fat tree: one pod, no core layer
    (9, None),          # 3 pods of 3: the full edge/core fat tree
    (8, TORUS_2D),      # 2x4 torus
    (8, TORUS_3D),      # 2x2x2 torus
)


def _system(num_nodes, inter):
    if inter is None:
        return System(cluster_platform(num_nodes, node=QUAD_NODE))
    return System(cluster_platform(num_nodes, node=QUAD_NODE, inter=inter))


def _endpoints(name):
    """The (tail, head) of a directed link, from its name."""
    _, _, path = name.partition(":")
    a, _, b = path.partition("->")
    return a, b.partition("[")[0]


@pytest.mark.parametrize("num_nodes,inter", CLUSTERS)
def test_routes_exist_between_every_distinct_pair(num_nodes, inter):
    system = _system(num_nodes, inter)
    for src, dst in itertools.permutations(range(system.num_gpus), 2):
        route = system.fabric.route(src, dst)
        assert route.src == src and route.dst == dst
        assert route.bottleneck_bandwidth > 0
        # Memoized: the lazy cross-node builder runs once per pair.
        assert system.fabric.route(src, dst) is route


@pytest.mark.parametrize("num_nodes,inter", CLUSTERS)
def test_route_symmetry_is_the_endpoint_reversed_image(num_nodes, inter):
    # The reverse route must walk the same nodes backwards, crossing the
    # opposite-direction link at every hop — full-duplex pairs, so a
    # ring's forward hops never contend with the reverse direction.
    system = _system(num_nodes, inter)
    for src, dst in itertools.combinations(range(system.num_gpus), 2):
        forward = [_endpoints(link.name)
                   for link in system.fabric.route(src, dst).links]
        reverse = [_endpoints(link.name)
                   for link in system.fabric.route(dst, src).links]
        assert reverse == [(b, a) for (a, b) in reversed(forward)]
        # Directions are distinct physical links.
        fwd_names = {link.name
                     for link in system.fabric.route(src, dst).links}
        rev_names = {link.name
                     for link in system.fabric.route(dst, src).links}
        assert not fwd_names & rev_names


@pytest.mark.parametrize("num_nodes,inter", CLUSTERS)
def test_node_boundary_nic_traversal_counts(num_nodes, inter):
    # Exactly one source-NIC injection and one destination-NIC delivery
    # per cross-node route; intra-node routes never touch a NIC.
    system = _system(num_nodes, inter)
    fabric = system.fabric
    per_node = QUAD_NODE.gpus_per_node
    for src, dst in itertools.permutations(range(system.num_gpus), 2):
        nic_links = [link.name for link in fabric.route(src, dst).links
                     if link.name.startswith("nic:")]
        if src // per_node == dst // per_node:
            assert nic_links == []
        else:
            assert nic_links == [f"nic:n{src // per_node}->net",
                                 f"nic:net->n{dst // per_node}"]


@pytest.mark.parametrize("num_nodes,inter", CLUSTERS)
def test_intra_node_routes_stay_on_the_node_switch(num_nodes, inter):
    system = _system(num_nodes, inter)
    per_node = QUAD_NODE.gpus_per_node
    for src, dst in itertools.permutations(range(per_node), 2):
        names = [link.name for link in system.fabric.route(src, dst).links]
        assert names == [f"nvsw:gpu{src}->sw", f"nvsw:sw->gpu{dst}"]


def test_fat_tree_node_disjoint_routes_are_link_disjoint():
    # Per-node NICs and dedicated core up/down links: two routes whose
    # endpoint nodes are disjoint share no links, same-pod or cross-pod.
    system = _system(9, None)
    fabric = system.fabric
    per_node = QUAD_NODE.gpus_per_node
    gpus = [node * per_node for node in range(9)]  # one GPU per node
    pairs = list(itertools.permutations(gpus, 2))
    for (a, b), (c, d) in itertools.combinations(pairs, 2):
        if {a // per_node, b // per_node} & {c // per_node, d // per_node}:
            continue
        links_ab = {id(link) for link in fabric.route(a, b).links}
        links_cd = {id(link) for link in fabric.route(c, d).links}
        assert not links_ab & links_cd, (a, b, c, d)


def test_fat_tree_same_pod_skips_the_core():
    system = _system(9, None)
    inter = system.fabric.inter
    assert inter.pod_size == 3 and inter.num_pods == 3
    links, hops = inter.path(0, 2)       # same pod: meet at the edge
    assert links == [] and hops == 1
    links, hops = inter.path(0, 5)       # cross pod: edge-core-edge
    assert hops == 3
    assert [link.name for link in links] == \
        ["ft:pod0.n0->core", "ft:core->pod1.n5"]


@pytest.mark.parametrize("inter", (TORUS_2D, TORUS_3D))
def test_torus_paths_are_dimension_ordered_shortest(inter):
    system = _system(8, inter)
    topo = system.fabric.inter
    for src, dst in itertools.permutations(range(8), 2):
        links, hops = topo.path(src, dst)
        assert len(links) == hops
        want = sum(min(delta, size - delta) for size, delta in
                   ((size, (d - s) % size) for size, s, d in
                    zip(topo.dims, topo.coords(src), topo.coords(dst))))
        assert hops == want, (src, dst)


def test_torus_dims_factorizations():
    assert torus_dims(64, 3) == (4, 4, 4)
    assert torus_dims(64, 2) == (8, 8)
    assert torus_dims(8, 3) == (2, 2, 2)
    assert torus_dims(6, 3) == (1, 2, 3)


@pytest.mark.parametrize("num_nodes,inter", CLUSTERS)
def test_cluster_widens_the_collective_access_size(num_nodes, inter):
    # Collective bulk transfers are issued at the NIC MTU so RDMA
    # framing stays efficient; NVLink framing is unchanged because the
    # MTU is a whole multiple of the NVLink max payload.
    system = _system(num_nodes, inter)
    nic_mtu = HDR200_NIC.fmt.max_payload
    assert system.fabric.collective_access_size == nic_mtu
    assert nic_mtu % system.spec.interconnect.fmt.max_payload == 0
