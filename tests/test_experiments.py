"""Tests for the experiment harnesses (fast, reduced-size runs)."""

import pytest

from repro.core import MECH_CDP, MECH_POLLING
from repro.experiments import (
    fig2_goodput,
    fig4_profile,
    fig6_micro,
    fig7_endtoend,
    fig10_scaling,
    table1_systems,
    table2_configs,
)
from repro.experiments.report import TextTable, geometric_mean
from repro.hw import PLATFORM_4X_VOLTA, PLATFORM_16X_VOLTA
from repro.units import KiB, MiB
from repro.workloads import JacobiWorkload, PageRankWorkload


def small_workloads():
    return [
        PageRankWorkload(num_vertices=4_000_000, num_edges=120_000_000,
                         iterations=2),
        JacobiWorkload(num_unknowns=4_000_000, bandwidth=30, iterations=2),
    ]


# ---------------------------------------------------------------------------
# Report helpers
# ---------------------------------------------------------------------------

def test_text_table_renders():
    table = TextTable("Demo", ["name", "value"])
    table.add_row("alpha", 1.25)
    table.add_row("beta", 0.5)
    rendered = table.render()
    assert "Demo" in rendered
    assert "alpha" in rendered
    assert "1.25" in rendered


def test_text_table_rejects_wrong_width():
    table = TextTable("Demo", ["a", "b"])
    with pytest.raises(ValueError):
        table.add_row(1)


def test_geometric_mean():
    assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
    assert geometric_mean([3.0]) == 3.0
    with pytest.raises(ValueError):
        geometric_mean([])
    with pytest.raises(ValueError):
        geometric_mean([1.0, 0.0])


# ---------------------------------------------------------------------------
# Figure 2
# ---------------------------------------------------------------------------

def test_fig2_runs_and_anchors():
    result = fig2_goodput.run()
    anchors = result.anchor_points()
    assert anchors["PCIe"] == pytest.approx(0.143, abs=0.01)
    assert anchors["NVLink"] == pytest.approx(0.083, abs=0.01)
    assert "Figure 2" in str(result.table())


# ---------------------------------------------------------------------------
# Figure 4 (tiny sweep)
# ---------------------------------------------------------------------------

def test_fig4_profile_surface_small():
    result = fig4_profile.run(
        threads=(32, 512), sizes=(64 * KiB, 4 * MiB),
        data_bytes=8 * MiB)
    assert max(result.throughput.values()) == pytest.approx(1.0)
    best_threads, _best_size = result.best_cell()
    assert best_threads == 512  # 32 threads starve PCIe


# ---------------------------------------------------------------------------
# Figure 6 (single platform, tiny data)
# ---------------------------------------------------------------------------

def test_fig6_micro_small():
    from repro.hw import PLATFORM_4X_PASCAL
    result = fig6_micro.run(
        platforms=[PLATFORM_4X_PASCAL],
        granularities=(16 * KiB, 1 * MiB, 16 * MiB),
        data_bytes=16 * MiB)
    regions = result.regions("4x_pascal", MECH_CDP)
    assert regions["peak"] > 1.2
    assert regions["initiation"] < regions["peak"]
    polling_peak = result.peak("4x_pascal", MECH_POLLING)
    assert polling_peak > 1.2


# ---------------------------------------------------------------------------
# Figure 7 (one platform, two reduced apps)
# ---------------------------------------------------------------------------

def test_fig7_small():
    result = fig7_endtoend.run(platforms=[PLATFORM_4X_VOLTA],
                               workloads=small_workloads())
    table = result.table("4x_volta")
    assert "geomean" in str(table)
    for workload in result.workloads:
        infinite = result.speedups[("4x_volta", workload, "Infinite BW")]
        for paradigm in fig7_endtoend.PARADIGM_ORDER:
            speedup = result.speedups[("4x_volta", workload, paradigm)]
            assert 0 < speedup <= infinite + 1e-9
    assert result.proact_geomean("4x_volta") > result.geomean(
        "4x_volta", "cudaMemcpy")


# ---------------------------------------------------------------------------
# Figure 10 (tiny sweep)
# ---------------------------------------------------------------------------

def test_fig10_small():
    result = fig10_scaling.run(
        sweeps=[(PLATFORM_16X_VOLTA, (1, 4, 8))],
        workloads=small_workloads())
    assert result.at("16x_volta", 1, "PROACT") == pytest.approx(1.0)
    assert (result.at("16x_volta", 8, "PROACT")
            > result.at("16x_volta", 4, "PROACT"))
    assert result.proact_advantage("16x_volta", 8) > 1.0
    assert 0 < result.capture("16x_volta", 8) <= 1.0


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------

def test_table1_contents():
    result = table1_systems.run()
    rendered = str(result.table())
    assert "Tesla K40m" in rendered
    assert "NVSwitch" in rendered
    assert "16" in rendered


def test_table2_small():
    result = table2_configs.run(
        platforms=[PLATFORM_4X_VOLTA],
        workloads=small_workloads(),
        chunk_sizes=(1 * MiB,),
        thread_counts=(2048,))
    assert result.mechanism("4x_volta", "Pagerank") in ("Poll", "CDP")
    assert result.mechanism("4x_volta", "Jacobi") == "I"
    assert result.runtimes[("4x_volta", "Pagerank")] > 0


def test_fig1_paradigms_small():
    from repro.experiments import fig1_paradigms
    from repro.units import MiB
    result = fig1_paradigms.run(data_bytes=16 * MiB)
    assert set(result.runtimes) == set(fig1_paradigms.FIGURE1_ORDER)
    assert result.runtimes["PROACT-decoupled"] < result.runtimes["cudaMemcpy"]
    assert "Figure 1" in str(result.table())


def test_ablation_granularity_small():
    from repro.experiments import ablations
    from repro.units import KiB, MiB
    result = ablations.run_granularity_ablation(
        workload=PageRankWorkload(num_vertices=4_000_000,
                                  num_edges=120_000_000, iterations=2),
        chunk_sizes=(16 * KiB, 1 * MiB, 16 * MiB))
    assert len(result.runtimes) == 3
    assert result.best_chunk() in (16 * KiB, 1 * MiB, 16 * MiB)


def test_timeline_rendering():
    from repro.core import MECH_POLLING, GpuPhaseWork, ProactConfig
    from repro.core.runtime import ProactPhaseExecutor
    from repro.experiments.timeline import render_phase_timeline
    from repro.runtime import KernelSpec, System

    system = System(PLATFORM_4X_VOLTA)
    gpu = system.gpus[0]
    executor = ProactPhaseExecutor(
        system, ProactConfig(MECH_POLLING, 512 * KiB, 2048))
    works = [GpuPhaseWork(
        kernel=KernelSpec("k", gpu.spec.flops * 1e-3, 0, 4000),
        region_bytes=8 * MiB) for _ in range(4)]
    result = system.run(until=executor.execute(works))
    rendered = render_phase_timeline(result, width=40)
    lines = rendered.splitlines()
    assert len(lines) == 5  # header + 4 GPUs
    assert all("|" in line for line in lines[1:])
    assert "#" in rendered
    with pytest.raises(ValueError):
        render_phase_timeline(result, width=4)


def test_timeline_empty_phase():
    from repro.core.runtime import PhaseResult
    from repro.experiments.timeline import render_phase_timeline
    assert render_phase_timeline(
        PhaseResult(start=1.0, end=1.0)) == "(empty phase)"


def test_timeline_marks_truncated_events():
    from repro.core.runtime import GpuPhaseOutcome, PhaseResult
    from repro.experiments.timeline import (
        TimelineTruncationError,
        render_phase_timeline,
    )

    result = PhaseResult(start=1.0, end=2.0, outcomes=[
        GpuPhaseOutcome(gpu_id=0, kernel_start=1.0, kernel_end=1.5,
                        transfers_end=2.5),  # drains past the window
        GpuPhaseOutcome(gpu_id=1, kernel_start=1.0, kernel_end=1.8,
                        transfers_end=1.8),
    ])
    rendered = render_phase_timeline(result, width=20)
    lines = rendered.splitlines()
    assert "truncated" in lines[0]       # header calls it out
    assert lines[1].endswith("|!")       # the clipped strip is marked
    assert not lines[2].endswith("!")    # in-window strips are not
    with pytest.raises(TimelineTruncationError):
        render_phase_timeline(result, width=20, strict=True)

    clean = PhaseResult(start=1.0, end=2.0, outcomes=[
        GpuPhaseOutcome(gpu_id=0, kernel_start=1.0, kernel_end=1.5,
                        transfers_end=2.0)])
    assert "truncated" not in render_phase_timeline(clean, strict=True)


def test_sensitivity_small():
    from repro.experiments import sensitivity
    result = sensitivity.run(
        workloads=small_workloads(),
        perturbations=[("baseline", "", 1.0),
                       ("tracking x2", "atomic_track_cost", 2.0)])
    assert len(result.rows) == 2
    assert result.rows[0].conclusions_hold
    assert "Sensitivity" in str(result.table())


def test_utilization_timeline_mechanics():
    from repro.experiments.utilization import (
        active_window_fraction,
        coefficient_of_variation,
        link_utilization_timeline,
    )
    from repro.interconnect import NVLINK_FORMAT, Link
    from repro.sim import Engine

    link = Link(Engine(), "l", 1e9, NVLINK_FORMAT)
    link.busy.add(0.0, 1.0)
    link.busy.add(3.0, 4.0)
    series = link_utilization_timeline(link, end_time=4.0, buckets=4)
    assert series == [1.0, 0.0, 0.0, 1.0]
    assert active_window_fraction(series) == 1.0
    assert active_window_fraction([0, 0, 1, 0]) == 0.25
    assert active_window_fraction([0, 0, 0, 0]) == 0.0
    assert coefficient_of_variation([1.0, 1.0]) == 0.0
    assert coefficient_of_variation([]) == 0.0
    with pytest.raises(ValueError):
        link_utilization_timeline(link, end_time=4.0, buckets=0)


def test_utilization_run_small():
    from repro.experiments import utilization
    from repro.workloads import MicroBenchmark
    result = utilization.run(
        workload=MicroBenchmark(data_bytes=8 * MiB), buckets=16)
    assert set(result.timelines) == {"cudaMemcpy", "PROACT-decoupled"}
    assert all(len(s) == 16 for s in result.timelines.values())
    assert "utilization" in str(result.table())
