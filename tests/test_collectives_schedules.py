"""Schedule-level tests: builders, dependencies, symbolic verification."""

import pytest

from repro.collectives import (
    ALGO_DIRECT,
    ALGO_RING,
    ALGO_TREE,
    ALL_ALGORITHMS,
    ALL_COLLECTIVES,
    COLL_ALL_GATHER,
    COLL_ALL_REDUCE,
    COLL_BROADCAST,
    COLL_REDUCE_SCATTER,
    build_schedule,
    replay_payloads,
    supported_algorithms,
    verify_schedule,
)
from repro.collectives.schedule import (
    MODE_COPY,
    MODE_REDUCE,
    ScheduleBuilder,
    TransferOp,
)
from repro.errors import CollectiveError
from repro.units import KiB, MiB

GPU_COUNTS = (1, 2, 4, 5, 8, 16)
PAYLOADS = (0, 3, 256 * KiB, 1 * MiB + 7)


# ---------------------------------------------------------------------------
# Every (collective, algorithm, GPU count, payload) satisfies its
# postcondition under symbolic replay.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("collective", ALL_COLLECTIVES)
@pytest.mark.parametrize("num_gpus", GPU_COUNTS)
def test_every_schedule_verifies(collective, num_gpus):
    for algorithm in supported_algorithms(collective, num_gpus):
        for nbytes in PAYLOADS:
            schedule = build_schedule(collective, algorithm, num_gpus,
                                      nbytes, 64 * KiB)
            verify_schedule(schedule)


def test_supported_algorithms_gates_tree_on_power_of_two():
    # Tree broadcast (binomial) works at any size; the halving/doubling
    # trees need a power-of-two GPU count.
    assert ALGO_TREE in supported_algorithms(COLL_BROADCAST, 5)
    for collective in (COLL_ALL_GATHER, COLL_REDUCE_SCATTER,
                       COLL_ALL_REDUCE):
        assert ALGO_TREE not in supported_algorithms(collective, 5)
        assert ALGO_TREE in supported_algorithms(collective, 8)
    for collective in ALL_COLLECTIVES:
        algos = supported_algorithms(collective, 4)
        assert algos[0] == ALGO_DIRECT
        assert set(algos) == set(ALL_ALGORITHMS)


def test_build_schedule_rejects_bad_inputs():
    with pytest.raises(CollectiveError):
        build_schedule("reduce", ALGO_RING, 4, 1 * MiB, 64 * KiB)
    with pytest.raises(CollectiveError):
        build_schedule(COLL_ALL_REDUCE, "double-binary-tree", 4, 1 * MiB,
                       64 * KiB)
    with pytest.raises(CollectiveError):
        build_schedule(COLL_ALL_REDUCE, ALGO_TREE, 6, 1 * MiB, 64 * KiB)
    with pytest.raises(CollectiveError):
        build_schedule(COLL_BROADCAST, ALGO_RING, 4, 1 * MiB, 64 * KiB,
                       root=4)
    with pytest.raises(CollectiveError):
        build_schedule(COLL_BROADCAST, ALGO_RING, 4, -1, 64 * KiB)
    with pytest.raises(CollectiveError):
        build_schedule(COLL_BROADCAST, ALGO_RING, 4, 1 * MiB, 0)


# ---------------------------------------------------------------------------
# Structure: chunking, dependencies, byte accounting
# ---------------------------------------------------------------------------

def test_chunking_splits_shards_at_proact_granularity():
    schedule = build_schedule(COLL_ALL_GATHER, ALGO_RING, 4, 4 * MiB,
                              256 * KiB)
    # Each 1 MiB shard splits into four 256 KiB chunks.
    assert all(op.nbytes == 256 * KiB for op in schedule.ops)
    chunks = {(op.shard, op.chunk) for op in schedule.ops}
    assert chunks == {(shard, chunk)
                      for shard in range(4) for chunk in range(4)}


def test_deps_reference_earlier_ops_only():
    for collective in ALL_COLLECTIVES:
        for algorithm in supported_algorithms(collective, 8):
            schedule = build_schedule(collective, algorithm, 8, 1 * MiB,
                                      64 * KiB)
            for op in schedule.ops:
                assert all(dep < op.index for dep in op.deps)


def test_ring_chunks_pipeline_independently():
    # Chunk k+1 of a ring step must not depend on chunk k: independent
    # chunk streams are what lets a chunk ride the upstream link while
    # its predecessor crosses the downstream hop.
    schedule = build_schedule(COLL_BROADCAST, ALGO_RING, 4, 1 * MiB,
                              128 * KiB)
    first_hop = [op for op in schedule.ops if op.src == 0]
    assert len(first_hop) == 8  # 1 MiB / 128 KiB
    assert all(op.deps == () for op in first_hop)


def test_ring_all_reduce_moves_exactly_2_n_minus_1_over_n_bytes():
    for num_gpus in (2, 4, 8, 16):
        nbytes = num_gpus * 64 * KiB
        schedule = build_schedule(COLL_ALL_REDUCE, ALGO_RING, num_gpus,
                                  nbytes, 16 * KiB)
        expected = 2 * (num_gpus - 1) * nbytes // num_gpus
        for gpu in range(num_gpus):
            assert schedule.sent_bytes(gpu) == expected
        assert schedule.total_bytes() == expected * num_gpus
        assert schedule.num_steps() == 2 * (num_gpus - 1)


def test_single_gpu_schedules_are_trivial():
    for collective in ALL_COLLECTIVES:
        for algorithm in supported_algorithms(collective, 1):
            schedule = build_schedule(collective, algorithm, 1, 1 * MiB,
                                      64 * KiB)
            assert all(op.src == op.dst == 0 for op in schedule.ops)
            verify_schedule(schedule)


def test_broadcast_respects_root():
    for algorithm in (ALGO_DIRECT, ALGO_RING, ALGO_TREE):
        schedule = build_schedule(COLL_BROADCAST, algorithm, 4, 256 * KiB,
                                  64 * KiB, root=2)
        buffers = verify_schedule(schedule)
        for gpu in range(4):
            for payload in buffers[gpu].values():
                assert payload == frozenset((2,))


# ---------------------------------------------------------------------------
# Op and replay validation
# ---------------------------------------------------------------------------

def test_transfer_op_validation():
    with pytest.raises(CollectiveError):
        TransferOp(index=0, step=0, src=0, dst=1, nbytes=-1, shard=0,
                   chunk=0, mode=MODE_COPY)
    with pytest.raises(CollectiveError):
        TransferOp(index=0, step=0, src=0, dst=1, nbytes=1, shard=0,
                   chunk=0, mode="xor")
    with pytest.raises(CollectiveError):
        TransferOp(index=1, step=0, src=0, dst=1, nbytes=1, shard=0,
                   chunk=0, mode=MODE_COPY, deps=(1,))


def test_replay_rejects_sends_of_data_never_held():
    builder = ScheduleBuilder(COLL_BROADCAST, "bogus", 4, 256 * KiB,
                              64 * KiB)
    # GPU 1 forwards root data it was never sent.
    builder.send(0, 1, 2, 0, 0, 64 * KiB, MODE_COPY)
    with pytest.raises(CollectiveError, match="never received"):
        replay_payloads(builder.build())


def test_replay_rejects_reduce_into_missing_buffer():
    builder = ScheduleBuilder(COLL_BROADCAST, "bogus", 4, 256 * KiB,
                              64 * KiB)
    builder.send(0, 0, 1, 0, 0, 64 * KiB, MODE_REDUCE)
    with pytest.raises(CollectiveError, match="does not hold"):
        replay_payloads(builder.build())


def test_verify_catches_incomplete_broadcast():
    builder = ScheduleBuilder(COLL_BROADCAST, "bogus", 4, 256 * KiB,
                              256 * KiB)
    builder.send(0, 0, 1, 0, 0, 256 * KiB, MODE_COPY)  # GPUs 2, 3 starve
    with pytest.raises(CollectiveError, match="missing chunk"):
        verify_schedule(builder.build())


def test_zero_byte_collectives_still_verify():
    for collective in ALL_COLLECTIVES:
        for algorithm in supported_algorithms(collective, 4):
            schedule = build_schedule(collective, algorithm, 4, 0, 64 * KiB)
            verify_schedule(schedule)
            assert schedule.total_bytes() == 0


def test_tiny_payload_smaller_than_gpu_count_verifies():
    # nbytes < N leaves trailing shards empty; accounting must still flow.
    for algorithm in (ALGO_DIRECT, ALGO_RING, ALGO_TREE):
        schedule = build_schedule(COLL_ALL_REDUCE, algorithm, 8, 3,
                                  64 * KiB)
        verify_schedule(schedule)
