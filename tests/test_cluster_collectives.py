"""Hierarchical all-reduce: schedule, execution, tuning, and the oracle.

The hierarchical algorithm (reduce-scatter intra-node, ring all-reduce
across node leaders over the NICs, all-gather intra-node) must satisfy
the same contracts as the flat algorithms — contributor-complete under
``verify_schedule``, byte-exact against its closed form — while beating
the flat ring across node boundaries, which is its reason to exist.
"""

import pytest

from repro.cluster import (
    CLUSTER_PLATFORMS,
    HDR200_NIC,
    NodeSpec,
    TORUS_3D,
    cluster_platform,
    hierarchical_sent_bytes,
)
from repro.collectives import (
    ALGO_HIERARCHICAL,
    CollectiveTuner,
    build_schedule,
    run_collective,
    supported_algorithms,
    verify_schedule,
)
from repro.errors import CollectiveError, ConfigurationError
from repro.hw.platform import platform_by_name
from repro.hw.specs import VOLTA_V100
from repro.interconnect.specs import NVSWITCH
from repro.units import KiB, MiB
from repro.validate.oracle import DifferentialOracle

QUAD_NODE = NodeSpec(name="quad", gpu=VOLTA_V100, interconnect=NVSWITCH,
                     gpus_per_node=4, nic=HDR200_NIC)


def quad_cluster(num_nodes=2, inter=None):
    if inter is None:
        return cluster_platform(num_nodes, node=QUAD_NODE)
    return cluster_platform(num_nodes, node=QUAD_NODE, inter=inter)


# ----------------------------------------------------------------------
# Schedule contracts
# ----------------------------------------------------------------------

@pytest.mark.parametrize("num_nodes", (2, 3, 4))
def test_hierarchical_schedule_passes_the_symbolic_verifier(num_nodes):
    platform = quad_cluster(num_nodes)
    schedule = build_schedule("all_reduce", ALGO_HIERARCHICAL,
                              platform.num_gpus, 64 * KiB, 16 * KiB,
                              gpus_per_node=4)
    verify_schedule(schedule)  # raises on any missing contributor


@pytest.mark.parametrize("num_nodes", (2, 4))
def test_hierarchical_bytes_match_the_closed_form(num_nodes):
    platform = quad_cluster(num_nodes)
    n = platform.num_gpus
    nbytes = 128 * KiB
    schedule = build_schedule("all_reduce", ALGO_HIERARCHICAL, n, nbytes,
                              32 * KiB, gpus_per_node=4)
    want = hierarchical_sent_bytes(nbytes, n, 4)
    assert schedule.per_gpu_sent_bytes() == tuple([want] * n)
    # Every GPU sources strictly less than the flat ring's optimum only
    # when nodes dominate; at minimum it must never exceed it.
    ring_optimal = 2 * (n - 1) * nbytes // n
    assert want <= ring_optimal


def test_hierarchical_sent_bytes_needs_whole_shards():
    with pytest.raises(CollectiveError):
        hierarchical_sent_bytes(1001, 8, 4)  # 1001 % 8 != 0


def test_hierarchical_needs_a_node_geometry():
    with pytest.raises(CollectiveError):
        build_schedule("all_reduce", ALGO_HIERARCHICAL, 8, 64 * KiB,
                       16 * KiB)  # no gpus_per_node


def test_hierarchical_needs_at_least_two_whole_nodes():
    with pytest.raises(CollectiveError):
        build_schedule("all_reduce", ALGO_HIERARCHICAL, 4, 64 * KiB,
                       16 * KiB, gpus_per_node=4)  # one node


def test_supported_algorithms_admits_hierarchical_on_clusters_only():
    flat = supported_algorithms("all_reduce", 8)
    assert ALGO_HIERARCHICAL not in flat
    clustered = supported_algorithms("all_reduce", 8, gpus_per_node=4)
    assert ALGO_HIERARCHICAL in clustered
    # Other collectives keep their flat algorithm set.
    assert ALGO_HIERARCHICAL not in supported_algorithms(
        "all_gather", 8, gpus_per_node=4)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------

def test_hierarchical_beats_the_flat_ring_across_nodes():
    platform = quad_cluster(4)  # 16 GPUs over 4 nodes
    ring = run_collective(platform, "all_reduce", "ring", 1 * MiB,
                          chunk_size=256 * KiB)
    hier = run_collective(platform, "all_reduce", ALGO_HIERARCHICAL,
                          1 * MiB, chunk_size=256 * KiB)
    assert hier.duration < ring.duration
    assert hier.bus_bandwidth > ring.bus_bandwidth


def test_hierarchical_runs_on_a_torus():
    platform = quad_cluster(8, inter=TORUS_3D)
    result = run_collective(platform, "all_reduce", ALGO_HIERARCHICAL,
                            256 * KiB, chunk_size=64 * KiB)
    assert result.duration > 0
    want = hierarchical_sent_bytes(256 * KiB, platform.num_gpus, 4)
    assert all(sent == want for sent in result.sent_bytes)


def test_session_runs_a_cluster_collective():
    from repro.api import Session
    session = Session("64x_volta_fat_tree", validate=True)
    result = session.collective("all_reduce", 256 * KiB,
                                algorithm=ALGO_HIERARCHICAL)
    assert result.num_gpus == 64
    assert result.duration > 0


# ----------------------------------------------------------------------
# Tuner integration
# ----------------------------------------------------------------------

def test_tuner_sweeps_hierarchical_on_cluster_platforms():
    tuner = CollectiveTuner(quad_cluster(2), "all_reduce",
                            chunk_sizes=(64 * KiB,))
    assert ALGO_HIERARCHICAL in tuner.algorithms
    result = tuner.tune(256 * KiB)
    assert ALGO_HIERARCHICAL in result.algorithms()
    assert result.best_for_algorithm(ALGO_HIERARCHICAL).runtime > 0


def test_cluster_sweep_signatures_carry_the_node_geometry():
    flat_sig = CollectiveTuner(
        platform_by_name("16x_volta"), "all_reduce",
        chunk_sizes=(64 * KiB,)).sweep_signature()
    assert "cluster=" not in flat_sig
    sig2 = CollectiveTuner(quad_cluster(2), "all_reduce",
                           chunk_sizes=(64 * KiB,)).sweep_signature()
    sig4 = CollectiveTuner(quad_cluster(4), "all_reduce",
                           chunk_sizes=(64 * KiB,)).sweep_signature()
    assert "cluster=nodes=2x4|inter=fat_tree|nic=HDR200" in sig2
    assert sig2 != sig4  # different geometry, different plan namespace


# ----------------------------------------------------------------------
# Differential oracle at cluster scale
# ----------------------------------------------------------------------

@pytest.mark.parametrize("algorithm", ("ring", ALGO_HIERARCHICAL))
def test_oracle_validates_cluster_collectives(algorithm):
    # verify_schedule + readiness sanitizer + conservation checker +
    # closed-form byte expectations, all live on the cluster fabric.
    oracle = DifferentialOracle()
    result = oracle.check_collective(quad_cluster(2), "all_reduce",
                                     algorithm, 64 * KiB,
                                     chunk_size=16 * KiB)
    assert result.num_gpus == 8


def test_oracle_validates_a_64gpu_dgx2_cluster():
    oracle = DifferentialOracle()
    result = oracle.check_collective(
        cluster_platform(4), "all_reduce", ALGO_HIERARCHICAL, 1 * MiB,
        chunk_size=256 * KiB)
    assert result.num_gpus == 64
    want = hierarchical_sent_bytes(1 * MiB, 64, 16)
    assert all(sent == want for sent in result.sent_bytes)


# ----------------------------------------------------------------------
# Platform registry
# ----------------------------------------------------------------------

def test_cluster_platforms_resolve_through_platform_by_name():
    platform = platform_by_name("64x_volta_fat_tree")
    assert platform.is_cluster
    assert platform.num_gpus == 64 and platform.gpus_per_node == 16
    assert "1024x_volta_fat_tree" in CLUSTER_PLATFORMS


def test_unknown_platform_error_lists_cluster_names_sorted():
    with pytest.raises(ConfigurationError) as err:
        platform_by_name("no_such_platform")
    message = str(err.value)
    assert "64x_volta_fat_tree" in message
    assert "4x_volta" in message


def test_with_num_gpus_scales_by_whole_nodes():
    grown = cluster_platform(4).with_num_gpus(256)
    assert grown.num_nodes == 16 and grown.num_gpus == 256
    assert grown.name == "256x_volta_fat_tree"
    with pytest.raises(ConfigurationError):
        cluster_platform(4).with_num_gpus(24)  # 1.5 nodes
