"""Tests for unit helpers and the error hierarchy."""

import pytest

from repro import errors
from repro.units import (
    GiB,
    KiB,
    MiB,
    format_bandwidth,
    format_bytes,
    format_time,
    gb_per_s,
    gib_per_s,
    msec,
    nsec,
    usec,
)


def test_size_constants():
    assert KiB == 1024
    assert MiB == 1024 ** 2
    assert GiB == 1024 ** 3


def test_time_conversions():
    assert usec(5) == pytest.approx(5e-6)
    assert msec(2) == pytest.approx(2e-3)
    assert nsec(100) == pytest.approx(1e-7)


def test_bandwidth_conversions():
    assert gb_per_s(16) == 16e9
    assert gib_per_s(1) == GiB


def test_format_bytes():
    assert format_bytes(512) == "512B"
    assert format_bytes(4096) == "4.0KiB"
    assert format_bytes(1536 * 1024) == "1.5MiB"
    assert format_bytes(3 * GiB) == "3.0GiB"


def test_format_time():
    assert format_time(0) == "0s"
    assert format_time(2.5) == "2.500s"
    assert format_time(3e-3) == "3.000ms"
    assert format_time(2.5e-6) == "2.500us"
    assert format_time(5e-9) == "5.0ns"


def test_format_bandwidth():
    assert format_bandwidth(16e9) == "16.0GB/s"


def test_error_hierarchy():
    for error_cls in (errors.SimulationError, errors.DeadlockError,
                      errors.ConfigurationError, errors.MemoryError_,
                      errors.RuntimeApiError, errors.ProactError,
                      errors.WorkloadError):
        assert issubclass(error_cls, errors.ReproError)
    assert issubclass(errors.DeadlockError, errors.SimulationError)


def test_public_package_api():
    import repro
    assert repro.__version__
    assert callable(repro.System)
    assert callable(repro.Profiler)
    assert repro.MECH_POLLING == "polling"
