"""Tests for the differential oracle and the conservation checker."""

import pytest

from repro.errors import ValidationError
from repro.hw import PLATFORM_4X_PASCAL, PLATFORM_4X_VOLTA
from repro.units import KiB, MiB
from repro.validate import DifferentialOracle, validation
from repro.validate.conservation import ConservationChecker
from repro.workloads.micro import MicroBenchmark
from tests.conftest import small_pagerank, volta_system


def small_micro():
    return MicroBenchmark(data_bytes=4 * MiB)


# ---------------------------------------------------------------------------
# Paradigm agreement
# ---------------------------------------------------------------------------

def test_paradigms_agree_on_microbenchmark():
    report = DifferentialOracle().compare_paradigms(
        small_micro(), PLATFORM_4X_VOLTA)
    assert len(report.results) == 5
    assert "PROACT-decoupled" in report.paradigms
    # Every structural agreement was actually checked and recorded.
    assert any("goodput matches closed form" in check
               for check in report.checks)
    assert any("lower bound" in check for check in report.checks)


def test_paradigms_agree_on_pagerank_across_platforms():
    oracle = DifferentialOracle()
    for platform in (PLATFORM_4X_VOLTA, PLATFORM_4X_PASCAL):
        report = oracle.compare_paradigms(small_pagerank(), platform)
        assert report.platform == platform.name
        assert len(report.checks) >= 5


def test_oracle_detects_byte_accounting_drift(monkeypatch):
    """If a paradigm's goodput ever drifts off the closed form, the
    oracle must flag it — simulated here by corrupting the expectation."""
    oracle = DifferentialOracle()
    real = oracle._expected_bytes

    def skewed(phases, hops):
        expected = real(phases, hops)
        return {key: value + 1 for key, value in expected.items()}

    monkeypatch.setattr(oracle, "_expected_bytes", skewed)
    with pytest.raises(ValidationError) as err:
        oracle.compare_paradigms(small_micro(), PLATFORM_4X_VOLTA)
    assert err.value.invariant == "goodput-mismatch"


# ---------------------------------------------------------------------------
# Collective agreement
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("collective,algorithm", [
    ("all_reduce", "ring"),
    ("all_reduce", "tree"),
    ("all_gather", "ring"),
    ("reduce_scatter", "direct"),
    ("broadcast", "tree"),
])
def test_collectives_match_their_schedules(collective, algorithm):
    result = DifferentialOracle().check_collective(
        PLATFORM_4X_VOLTA, collective, algorithm, 2 * MiB, 256 * KiB)
    assert result.op_count > 0
    assert result.duration > 0


def test_ring_all_reduce_optimality_enforced():
    result = DifferentialOracle().check_collective(
        PLATFORM_4X_VOLTA, "all_reduce", "ring", 4 * MiB, 512 * KiB)
    n = result.num_gpus
    assert all(sent == 2 * (n - 1) * (4 * MiB) // n
               for sent in result.sent_bytes)


def test_oracle_rejects_corrupted_schedule(monkeypatch):
    """Drop one op from a ring all-gather: the symbolic replay must fail
    and the oracle must surface it as a ValidationError."""
    from repro.collectives import algorithms as algos
    real_build = algos.build_schedule

    def sabotaged(*args, **kwargs):
        schedule = real_build(*args, **kwargs)
        object.__setattr__(schedule, "ops", schedule.ops[:-1])
        return schedule

    monkeypatch.setattr(algos, "build_schedule", sabotaged)
    with pytest.raises(ValidationError) as err:
        DifferentialOracle().check_collective(
            PLATFORM_4X_VOLTA, "all_gather", "ring", 1 * MiB, 256 * KiB)
    assert err.value.invariant == "schedule-verifier-disagreement"


# ---------------------------------------------------------------------------
# Functional agreement
# ---------------------------------------------------------------------------

def test_functional_equivalence_passes_for_micro():
    checks = DifferentialOracle().functional_equivalence(
        small_micro(), partition_counts=(2, 4))
    assert len(checks) == 2
    assert all(check.passed for check in checks)


def test_functional_divergence_is_flagged():
    class Diverging:
        name = "diverging"

        def verify_functional(self, num_partitions=4):
            class Check:
                passed = False
                max_abs_error = 1.5
            return Check()

    with pytest.raises(ValidationError) as err:
        DifferentialOracle().functional_equivalence(Diverging())
    assert err.value.invariant == "functional-divergence"


# ---------------------------------------------------------------------------
# Conservation checker
# ---------------------------------------------------------------------------

def run_small_collective(system):
    proc = system.collective("all_reduce", 1 * MiB)
    system.run(until=proc)
    return proc.value


def test_clean_run_passes_conservation():
    system = volta_system()
    run_small_collective(system)
    checker = ConservationChecker(system)
    checker.check(system.now)
    assert checker.checks_run == 1
    report = checker.link_report(system.now)
    assert report and all(entry["wire_bytes"] >= entry["goodput_bytes"]
                          for entry in report)


def test_goodput_exceeding_wire_bytes_is_caught():
    system = volta_system()
    run_small_collective(system)
    link = system.fabric.links[0]
    link.goodput_bytes = link.wire_bytes + 1
    with pytest.raises(ValidationError) as err:
        ConservationChecker(system).check(system.now)
    assert err.value.invariant == "goodput-exceeds-wire"


def test_bytes_beyond_link_capacity_are_caught():
    system = volta_system()
    run_small_collective(system)
    link = system.fabric.links[0]
    link.wire_bytes = int(link.bandwidth * system.now * 10)
    with pytest.raises(ValidationError) as err:
        ConservationChecker(system).check(system.now)
    assert err.value.invariant in ("bytes-exceed-capacity",
                                   "fabric-total-mismatch")


def test_negative_counters_are_caught():
    system = volta_system()
    run_small_collective(system)
    system.fabric.links[0].goodput_bytes = -5
    with pytest.raises(ValidationError) as err:
        ConservationChecker(system).check(system.now)
    assert err.value.invariant == "negative-byte-counter"


def test_busy_interval_outside_clock_is_caught():
    system = volta_system()
    run_small_collective(system)
    system.fabric.links[0].busy.add(system.now + 1.0, system.now + 2.0)
    with pytest.raises(ValidationError) as err:
        ConservationChecker(system).check(system.now)
    assert err.value.invariant in ("occupancy-exceeds-clock",
                                   "interval-outside-clock")


def test_checker_runs_at_phase_barriers_under_validation():
    with validation():
        system = volta_system()
        assert system.checker is not None
        run_small_collective(system)
        system.finish_validation()
        assert system.checker.checks_run >= 1
