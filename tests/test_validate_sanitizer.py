"""Unit and integration tests for the readiness sanitizer.

Each invariant is exercised twice over the suite: directly (drive the
sanitizer's hooks out of order and check the structured error) and
through the stack (corrupt a real component — e.g. a readiness counter —
and check the sanitizer catches the consequence with the chunk id, GPU,
and simulation time attached).
"""

import pytest

from repro.core import ContiguousMapping, ProactConfig, ReadinessTracker
from repro.core.config import MECH_POLLING
from repro.errors import ValidationError
from repro.sim import Engine
from repro.units import KiB, MiB
from repro.validate import (
    NULL_SANITIZER,
    ReadinessSanitizer,
    validation,
)
from repro.validate.sanitizer import (
    INV_BARRIER_BEFORE_DELIVERY,
    INV_BYTES_IN_FLIGHT,
    INV_DOUBLE_READY,
    INV_PREMATURE_READY,
    INV_READ_BEFORE_READY,
    INV_REREGISTERED,
    INV_SIGNAL_BEFORE_DELIVERY,
    INV_TIME_REGRESSION,
    INV_TRANSFER_BEFORE_READY,
    INV_UNKNOWN_CHUNK,
)
from tests.conftest import one_producer_phase, run_phase, volta_system


def make_ready(san, gpu=0, chunk=0, nbytes=1024, writers=2, t=0.0):
    """Drive one chunk through register -> writers -> ready."""
    san.register_chunk(gpu, chunk, nbytes, t, expected_writers=writers)
    for _ in range(writers):
        san.writer_retired(gpu, chunk, t)
    san.chunk_ready(gpu, chunk, t)


# ---------------------------------------------------------------------------
# The clean lifecycle
# ---------------------------------------------------------------------------

def test_full_lifecycle_passes_and_counts():
    san = ReadinessSanitizer()
    make_ready(san, writers=3, nbytes=4096)
    san.transfer_started(0, 0, 1.0)
    for dst in (1, 2):
        san.bytes_injected_for(0, 0, dst, 2048, 1.0)
    for dst in (1, 2):
        san.bytes_delivered_to(0, 0, dst, 2048, 2.0)
        san.readable_signalled(0, 0, dst, 2.0)
    for dst in (1, 2):
        san.consumer_read(0, 0, dst, 3.0)
    san.phase_end(4.0, expected_destinations={0: (1, 2)})
    summary = san.summary()
    assert summary["violations"] == 0
    assert summary["phases_checked"] == 1
    assert summary["chunks_checked"] == 1
    assert summary["bytes_injected"] == summary["bytes_delivered"] == 4096
    assert san.open_chunks == 0


def test_chunk_ids_reusable_across_phases():
    san = ReadinessSanitizer()
    for phase in range(3):
        make_ready(san, chunk=7, writers=1, t=float(phase))
        san.phase_end(phase + 0.5)
    assert san.summary()["phases_checked"] == 3


def test_disabled_sanitizer_ignores_everything():
    assert not NULL_SANITIZER.enabled
    NULL_SANITIZER.chunk_ready(0, 99, 0.0)  # unregistered: would raise
    NULL_SANITIZER.phase_end(0.0)
    assert NULL_SANITIZER.summary()["events_checked"] == 0


# ---------------------------------------------------------------------------
# Each ordering violation raises its structured invariant
# ---------------------------------------------------------------------------

def expect(invariant, call):
    with pytest.raises(ValidationError) as err:
        call()
    assert err.value.invariant == invariant
    return err.value


def test_ready_before_all_writers_retired():
    san = ReadinessSanitizer()
    san.register_chunk(0, 0, 1024, 0.0, expected_writers=4)
    san.writer_retired(0, 0, 0.5)
    error = expect(INV_PREMATURE_READY,
                   lambda: san.chunk_ready(0, 0, 1.0))
    assert "1 of 4" in str(error)


def test_writer_retiring_after_signal_is_premature_ready():
    san = ReadinessSanitizer()
    make_ready(san, writers=1)
    expect(INV_PREMATURE_READY, lambda: san.writer_retired(0, 0, 2.0))


def test_double_ready_signal():
    san = ReadinessSanitizer()
    make_ready(san)
    expect(INV_DOUBLE_READY, lambda: san.chunk_ready(0, 0, 1.0))


def test_transfer_before_ready():
    san = ReadinessSanitizer()
    san.register_chunk(0, 0, 1024, 0.0, expected_writers=2)
    expect(INV_TRANSFER_BEFORE_READY,
           lambda: san.transfer_started(0, 0, 0.5))


def test_signal_before_delivery():
    san = ReadinessSanitizer()
    make_ready(san)
    san.transfer_started(0, 0, 1.0)
    expect(INV_SIGNAL_BEFORE_DELIVERY,
           lambda: san.readable_signalled(0, 0, 1, 1.5))


def test_read_before_ready_flag():
    san = ReadinessSanitizer()
    make_ready(san)
    san.transfer_started(0, 0, 1.0)
    san.bytes_injected_for(0, 0, 1, 1024, 1.0)
    san.bytes_delivered_to(0, 0, 1, 1024, 2.0)
    # Delivered but never signalled readable: a read is still premature.
    error = expect(INV_READ_BEFORE_READY,
                   lambda: san.consumer_read(0, 0, 1, 2.5))
    assert "gpu=0" in str(error) and "chunk=0" in str(error)
    assert "t=2.5" in str(error)


def test_barrier_before_chunk_ready():
    san = ReadinessSanitizer()
    san.register_chunk(0, 3, 1024, 0.0, expected_writers=2)
    expect(INV_BARRIER_BEFORE_DELIVERY, lambda: san.phase_end(5.0))


def test_barrier_before_delivery_to_expected_destination():
    san = ReadinessSanitizer()
    make_ready(san)
    san.transfer_started(0, 0, 1.0)
    san.bytes_injected_for(0, 0, 1, 1024, 1.0)
    san.bytes_delivered_to(0, 0, 1, 1024, 2.0)
    error = expect(
        INV_BARRIER_BEFORE_DELIVERY,
        lambda: san.phase_end(3.0, expected_destinations={0: (1, 2)}))
    assert "gpu2" in str(error)


def test_bytes_still_in_flight_at_phase_end():
    san = ReadinessSanitizer()
    make_ready(san)
    san.transfer_started(0, 0, 1.0)
    san.bytes_injected_for(0, 0, 1, 1024, 1.0)
    san.bytes_delivered_to(0, 0, 1, 512, 2.0)
    san.readable_signalled(0, 0, 1, 2.0)
    error = expect(INV_BYTES_IN_FLIGHT,
                   lambda: san.phase_end(3.0))
    assert "512" in str(error)


def test_reregistering_a_live_chunk():
    san = ReadinessSanitizer()
    san.register_chunk(0, 0, 1024, 0.0)
    expect(INV_REREGISTERED,
           lambda: san.register_chunk(0, 0, 1024, 1.0))


def test_event_on_unregistered_chunk():
    san = ReadinessSanitizer()
    expect(INV_UNKNOWN_CHUNK, lambda: san.chunk_ready(1, 5, 0.0))


def test_time_regression():
    san = ReadinessSanitizer()
    san.register_chunk(0, 0, 1024, 5.0)
    expect(INV_TIME_REGRESSION,
           lambda: san.register_chunk(0, 1, 1024, 4.0))


def test_violations_counter_increments():
    san = ReadinessSanitizer()
    with pytest.raises(ValidationError):
        san.chunk_ready(0, 0, 0.0)
    assert san.summary()["violations"] == 1


# ---------------------------------------------------------------------------
# Through the stack: a corrupted component is caught, with context
# ---------------------------------------------------------------------------

def test_corrupted_readiness_counter_is_caught_with_context():
    """The acceptance-criterion bug injection: clobber one atomic counter
    so the chunk signals ready after a single CTA instead of all four.
    The sanitizer must name the invariant, chunk, GPU, and sim time."""
    engine = Engine(sanitizer=ReadinessSanitizer())
    engine.timeout(1.5e-3)
    engine.run()  # advance the clock so the error carries a real time
    tracker = ReadinessTracker(
        engine, ContiguousMapping(num_ctas=4, num_chunks=1), gpu_id=2)
    assert tracker.counters == [4]
    tracker.counters[0] = 1  # the injected bug: a dropped-store miscount
    with pytest.raises(ValidationError) as err:
        tracker.cta_complete(0)
    error = err.value
    assert error.invariant == INV_PREMATURE_READY
    assert error.gpu == 2 and error.chunk == 0
    assert error.time == pytest.approx(1.5e-3)
    message = str(error)
    assert "chunk=0" in message and "gpu=2" in message
    assert "t=0.0015s" in message
    assert "1 of 4" in message


def test_healthy_tracker_passes_under_sanitizer():
    engine = Engine(sanitizer=ReadinessSanitizer())
    tracker = ReadinessTracker(
        engine, ContiguousMapping(num_ctas=8, num_chunks=2))
    for cta in range(8):
        tracker.cta_complete(cta)
    assert tracker.all_ready
    assert engine.sanitizer.summary()["violations"] == 0


# ---------------------------------------------------------------------------
# End-to-end: a real decoupled phase under the sanitizer
# ---------------------------------------------------------------------------

def test_decoupled_phase_runs_clean_with_config_validate():
    system = volta_system()
    assert not system.validating
    config = ProactConfig(MECH_POLLING, 256 * KiB, 2048, validate=True)
    result = run_phase(system, config,
                       one_producer_phase(system, region_bytes=8 * MiB))
    assert system.validating
    assert result.duration > 0
    summary = system.engine.sanitizer.summary()
    assert summary["violations"] == 0
    assert summary["phases_checked"] == 1
    assert summary["chunks_checked"] == 8 * MiB // (256 * KiB)
    assert summary["bytes_injected"] == summary["bytes_delivered"] > 0


def test_system_picks_up_ambient_validation_scope():
    with validation() as scope:
        system = volta_system()
        assert system.validating
        assert system.checker is not None
        config = ProactConfig(MECH_POLLING, 256 * KiB, 2048)
        run_phase(system, config,
                  one_producer_phase(system, region_bytes=4 * MiB))
    summary = scope.summary()
    assert summary["systems_validated"] == 1
    assert summary["violations"] == 0
    assert summary["phases_checked"] == 1
    # Outside the scope, systems are unvalidated again.
    assert not volta_system().validating


def test_elided_transfers_still_satisfy_the_protocol():
    with validation():
        system = volta_system()
        config = ProactConfig(MECH_POLLING, 256 * KiB, 2048)
        run_phase(system, config,
                  one_producer_phase(system, region_bytes=4 * MiB),
                  elide_transfers=True)
        summary = system.engine.sanitizer.summary()
    assert summary["violations"] == 0
    assert summary["phases_checked"] == 1


def test_validation_error_formats_structured_fields():
    error = ValidationError("boom", invariant="some-invariant", gpu=3,
                            chunk=17, time=0.25)
    assert str(error) == "[some-invariant] gpu=3 chunk=17 t=0.25s boom"
    assert error.invariant == "some-invariant"
    assert (error.gpu, error.chunk, error.time) == (3, 17, 0.25)
