#!/usr/bin/env python
"""Functional layer demo: the PROACT programming model computes correctly.

Every benchmark application is also implemented *functionally*: the real
algorithm (NumPy) runs partitioned across virtual GPUs, exchanging data
through replicated shared regions with PROACT's synchronize-on-barrier
semantics, and is checked against a single-device reference.

This is the reproduction's answer to "does staging + readiness tracking
+ proactive transfer preserve program semantics?" — the partitioned and
single-device executions must agree to machine precision.

Run:  python examples/functional_correctness.py
"""

from repro.experiments.report import TextTable
from repro.workloads import (
    Heat2DWorkload,
    MicroBenchmark,
    default_workloads,
)


def main() -> None:
    table = TextTable(
        title="Functional verification: partitioned vs single-device",
        columns=["workload", "partitions", "iterations",
                 "max |error|", "status"])
    workloads = [MicroBenchmark(), *default_workloads(), Heat2DWorkload()]
    for workload in workloads:
        for partitions in (2, 3, 4):
            check = workload.verify_functional(num_partitions=partitions)
            table.add_row(
                workload.name, partitions, check.iterations,
                f"{check.max_abs_error:.2e}",
                "PASS" if check.passed else "FAIL")
    print(table)
    if not all(workload.verify_functional().passed
               for workload in workloads):
        raise SystemExit("functional verification failed")
    print("\nAll workloads agree with their single-device references.")


if __name__ == "__main__":
    main()
