#!/usr/bin/env python
"""Visualize compute/transfer overlap as ASCII timelines.

Runs one PageRank iteration's phase on the simulated 4x Volta under
three PROACT mechanisms and prints a Gantt strip per GPU: ``#`` is the
producer kernel, ``>`` is transfer time still draining after the kernel.
Decoupled transfers hide almost everything; a deliberately mis-tuned
single-chunk configuration exposes the paper's "tail transfer" pathology.

The last strip is rendered from *structured trace data* instead of the
phase summary: the run records into a tracer, and the strip is rebuilt
from its ``gpu{N}.kernel`` / ``gpu{N}.transfer`` span lanes — the same
lanes ``python -m repro --trace trace.json`` exports for Perfetto.

Run:  python examples/phase_timeline.py
"""

from repro import GpuPhaseWork, KernelSpec, ProactConfig, Session
from repro.core import (
    MECH_HARDWARE,
    MECH_POLLING,
    ProactPhaseExecutor,
)
from repro.experiments.timeline import (
    render_phase_timeline,
    render_trace_timeline,
    trace_exposed_transfer_time,
)
from repro.units import KiB, MiB


def build_phase(system):
    """One PageRank-flavoured phase: every GPU produces its rank slice."""
    gpu = system.gpus[0]
    works = []
    for gpu_id in range(system.num_gpus):
        works.append(GpuPhaseWork(
            kernel=KernelSpec(f"produce{gpu_id}",
                              flops=gpu.spec.flops * 1.5e-3,
                              local_bytes=0.0, num_ctas=6000),
            region_bytes=24 * MiB,
            store_size=8,
            spatial_locality=0.1,
            readiness_shape=2.5,
        ))
    return works


def show(title, config):
    system = Session("4x_volta").system()
    executor = ProactPhaseExecutor(system, config)
    result = system.run(until=executor.execute(build_phase(system)))
    print(f"--- {title} ({config.label()}) ---")
    print(render_phase_timeline(result))
    print()


def show_traced(title, config):
    """Same phase, but the strip is rebuilt from the recorded trace."""
    session = Session("4x_volta", trace=True)
    system = session.system()
    executor = ProactPhaseExecutor(system, config)
    result = system.run(until=executor.execute(build_phase(system)))
    session.finish(system)
    print(f"--- {title} ({config.label()}) ---")
    print(render_trace_timeline(system.tracer))
    reconstructed = trace_exposed_transfer_time(system.tracer)
    print(f"exposed transfer from trace lanes: {reconstructed * 1e6:.1f} us"
          f" (phase summary agrees: "
          f"{result.exposed_transfer_time * 1e6:.1f} us)")
    print()


def main() -> None:
    show("well-tuned polling",
         ProactConfig(MECH_POLLING, 128 * KiB, 2048))
    show("tail-transfer pathology: one giant chunk",
         ProactConfig(MECH_POLLING, 32 * MiB, 2048))
    show("hardware PROACT (Section III-D)",
         ProactConfig(MECH_HARDWARE, 128 * KiB, 2048))
    show_traced("trace-rendered: tail-transfer pathology",
                ProactConfig(MECH_POLLING, 32 * MiB, 2048))


if __name__ == "__main__":
    main()
