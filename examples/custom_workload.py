#!/usr/bin/env python
"""Bring your own application: define a workload and run it under PROACT.

Shows the public API a downstream user needs to evaluate PROACT for a new
application: describe each phase's kernels (FLOPs, memory traffic, CTA
count) and its shared-region writes (size, store granularity, spatial
locality), then hand the phases to the profiler and the paradigms.

The example models a 2-D 9-point stencil on a 16k x 16k grid whose halo
rows are shared every sweep — a pattern between Jacobi (dense ordered
writes) and the graph workloads (every peer needs the halos).

Run:  python examples/custom_workload.py
"""

from repro import GpuPhaseWork, KernelSpec, Session
from repro.core import StencilMapping
from repro.experiments.report import TextTable
from repro.units import KiB, MiB, format_time
from repro.workloads import Workload, strip_final_phase_regions

GRID_SIDE = 16 * 1024
SWEEPS = 8


class StencilWorkload(Workload):
    """A 9-point stencil with per-sweep halo publication."""

    name = "stencil-9pt"
    um_hint_fraction = 0.85
    um_touch_fraction = 0.4

    def build_phases(self, system):
        n = system.num_gpus
        rows = GRID_SIDE // n
        cells = rows * GRID_SIDE
        work = GpuPhaseWork(
            # 9 multiply-adds per cell; stream the row-block in and out.
            kernel=KernelSpec("stencil", flops=cells * 18,
                              local_bytes=cells * 24,
                              num_ctas=max(1, cells // (64 * 1024))),
            # Each sweep publishes the partition's updated rows.
            region_bytes=cells * 8 if n > 1 else 0,
            store_size=8,
            spatial_locality=0.9,       # row-major writes coalesce well
            readiness_shape=1.0,        # produced in address order
            mapping_factory=lambda ctas, chunks: StencilMapping(
                ctas, chunks, halo=1),
        )
        return strip_final_phase_regions([[work] * n] * SWEEPS)


def main() -> None:
    session = Session("4x_volta")
    workload = StencilWorkload()

    print(f"Profiling {workload.name} on {session.platform.name}...")
    profile = session.profile(workload,
                              chunk_sizes=(64 * KiB, 512 * KiB, 4 * MiB),
                              thread_counts=(512, 2048))
    print(f"profiler chose: {profile.best_config.label()}\n")

    reference = Session(session.platform, num_gpus=1).run(
        workload, "infinite").runtime
    if profile.best_config.is_decoupled:
        decoupled = ("decoupled", {"config": profile.best_config})
    else:
        decoupled = ("decoupled", {})  # default decoupled config
    table = TextTable(
        title=f"{workload.name} on {session.platform.name}",
        columns=["paradigm", "runtime", "speedup vs 1 GPU"])
    for name, kwargs in (("bulk", {}), ("inline", {}),
                         decoupled, ("infinite", {})):
        result = session.run(workload, name, **kwargs)
        table.add_row(result.paradigm, format_time(result.runtime),
                      f"{reference / result.runtime:.2f}x")
    print(table)


if __name__ == "__main__":
    main()
