#!/usr/bin/env python
"""Quickstart: run one application under every communication paradigm.

Builds the paper's 4x Volta system, runs PageRank under cudaMemcpy
duplication, Unified Memory, PROACT-inline, PROACT-decoupled, and the
infinite-bandwidth limit, and prints the speedups over a single GPU —
one row of the paper's Figure 7.

Everything goes through :class:`repro.api.Session`: one object bundles
the platform with the run policy, and ``session.run(workload,
paradigm=...)`` replaces paradigm-class construction.

Run:  python examples/quickstart.py
"""

from repro import Session
from repro.experiments.report import TextTable
from repro.units import format_time
from repro.workloads import PageRankWorkload

PARADIGMS = ("bulk", "um", "inline", "decoupled", "infinite")


def main() -> None:
    session = Session("4x_volta")
    workload = PageRankWorkload()
    platform = session.platform
    print(f"Running {workload.name} on {platform.num_gpus}x "
          f"{platform.gpu.name} ({platform.interconnect.name})\n")

    single_gpu = Session(platform, num_gpus=1).run(workload, "infinite")
    print(f"single-GPU reference: {format_time(single_gpu.runtime)}\n")

    table = TextTable(
        title=f"{workload.name} on {platform.name}",
        columns=["paradigm", "runtime", "speedup", "wire efficiency"])
    for paradigm in PARADIGMS:
        result = session.run(workload, paradigm)
        efficiency = result.interconnect_efficiency
        table.add_row(
            result.paradigm,
            format_time(result.runtime),
            f"{single_gpu.runtime / result.runtime:.2f}x",
            f"{efficiency:.0%}" if efficiency else "n/a")
    print(table)


if __name__ == "__main__":
    main()
