#!/usr/bin/env python
"""Quickstart: run one application under every communication paradigm.

Builds the paper's 4x Volta system, runs PageRank under cudaMemcpy
duplication, Unified Memory, PROACT-inline, PROACT-decoupled, and the
infinite-bandwidth limit, and prints the speedups over a single GPU —
one row of the paper's Figure 7.

Run:  python examples/quickstart.py
"""

from repro.experiments.report import TextTable
from repro.hw import PLATFORM_4X_VOLTA
from repro.paradigms import (
    BulkMemcpyParadigm,
    InfiniteBandwidthParadigm,
    ProactDecoupledParadigm,
    ProactInlineParadigm,
    UnifiedMemoryParadigm,
)
from repro.units import format_time
from repro.workloads import PageRankWorkload


def main() -> None:
    platform = PLATFORM_4X_VOLTA
    workload = PageRankWorkload()
    print(f"Running {workload.name} on {platform.num_gpus}x "
          f"{platform.gpu.name} ({platform.interconnect.name})\n")

    single_gpu = InfiniteBandwidthParadigm().execute(
        workload, platform.with_num_gpus(1))
    print(f"single-GPU reference: {format_time(single_gpu.runtime)}\n")

    table = TextTable(
        title=f"{workload.name} on {platform.name}",
        columns=["paradigm", "runtime", "speedup", "wire efficiency"])
    for paradigm in (BulkMemcpyParadigm(), UnifiedMemoryParadigm(),
                     ProactInlineParadigm(), ProactDecoupledParadigm(),
                     InfiniteBandwidthParadigm()):
        result = paradigm.execute(workload, platform)
        efficiency = result.interconnect_efficiency
        table.add_row(
            paradigm.name,
            format_time(result.runtime),
            f"{single_gpu.runtime / result.runtime:.2f}x",
            f"{efficiency:.0%}" if efficiency else "n/a")
    print(table)


if __name__ == "__main__":
    main()
