#!/usr/bin/env python
"""Auto-tuning walkthrough: PROACT's compile-time profiler on Jacobi.

Mirrors the paper's Section III-A: sweep transfer mechanism, chunk
granularity, and transfer-thread count for one application/platform pair,
print the whole profile, and report the configuration the framework would
bake into the compiled binary (one cell of Table II).

The sweep goes through ``Session.profile``; pass ``--exhaustive`` to run
the brute-force grid with the infinite-bandwidth lower-bound pruning
(identical winner, fewer full measurements).

Run:  python examples/autotune_jacobi.py [platform] [--exhaustive]
      (platform defaults to 4x_pascal; see repro.hw.PLATFORMS)
"""

import sys

from repro import Session
from repro.experiments.report import TextTable
from repro.units import KiB, MiB, format_time
from repro.workloads import JacobiWorkload


def main() -> None:
    args = [arg for arg in sys.argv[1:] if arg != "--exhaustive"]
    exhaustive = "--exhaustive" in sys.argv[1:]
    platform_name = args[0] if args else "4x_pascal"
    session = Session(platform_name)
    workload = JacobiWorkload()

    search = "exhaustive" if exhaustive else "coordinate"
    print(f"Profiling {workload.name} on {session.platform.name} "
          f"({search} search{', pruned' if exhaustive else ''})...\n")
    profile = session.profile(
        workload,
        chunk_sizes=(16 * KiB, 128 * KiB, 1 * MiB, 4 * MiB),
        thread_counts=(256, 1024, 2048, 4096),
        search=search,
        prune=exhaustive,
    )

    table = TextTable(
        title=f"Profile: {workload.name} on {session.platform.name}",
        columns=["configuration", "runtime"])
    for entry in sorted(profile.entries, key=lambda e: e.runtime):
        table.add_row(entry.config.label(), format_time(entry.runtime))
    print(table)
    if profile.pruned_configs:
        print(f"\n({profile.pruned_configs} configurations pruned by the "
              f"infinite-bandwidth lower bound; {profile.floor_runs} floor "
              f"simulations)")

    best = profile.best
    print(f"\nChosen configuration (Table II cell): {best.config.label()}"
          f" at {format_time(best.runtime)}")
    for mechanism in ("inline", "polling", "cdp"):
        entry = profile.best_for_mechanism(mechanism)
        print(f"  best {mechanism:8s}: {entry.config.label():20s} "
              f"{format_time(entry.runtime)}")


if __name__ == "__main__":
    main()
