#!/usr/bin/env python
"""Auto-tuning walkthrough: PROACT's compile-time profiler on Jacobi.

Mirrors the paper's Section III-A: sweep transfer mechanism, chunk
granularity, and transfer-thread count for one application/platform pair,
print the whole profile, and report the configuration the framework would
bake into the compiled binary (one cell of Table II).

Run:  python examples/autotune_jacobi.py [platform]
      (platform defaults to 4x_pascal; see repro.hw.PLATFORMS)
"""

import sys

from repro.core import Profiler
from repro.experiments.report import TextTable
from repro.hw import platform_by_name
from repro.units import KiB, MiB, format_time
from repro.workloads import JacobiWorkload


def main() -> None:
    platform_name = sys.argv[1] if len(sys.argv) > 1 else "4x_pascal"
    platform = platform_by_name(platform_name)
    workload = JacobiWorkload()

    profiler = Profiler(
        platform,
        chunk_sizes=(16 * KiB, 128 * KiB, 1 * MiB, 4 * MiB),
        thread_counts=(256, 1024, 2048, 4096),
    )
    print(f"Profiling {workload.name} on {platform.name} "
          f"(coordinate-descent search)...\n")
    profile = profiler.profile(workload.phase_builder())

    table = TextTable(
        title=f"Profile: {workload.name} on {platform.name}",
        columns=["configuration", "runtime"])
    for entry in sorted(profile.entries, key=lambda e: e.runtime):
        table.add_row(entry.config.label(), format_time(entry.runtime))
    print(table)

    best = profile.best
    print(f"\nChosen configuration (Table II cell): {best.config.label()}"
          f" at {format_time(best.runtime)}")
    for mechanism in ("inline", "polling", "cdp"):
        entry = profile.best_for_mechanism(mechanism)
        print(f"  best {mechanism:8s}: {entry.config.label():20s} "
              f"{format_time(entry.runtime)}")


if __name__ == "__main__":
    main()
