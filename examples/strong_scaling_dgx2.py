#!/usr/bin/env python
"""Strong scaling on the simulated DGX-2 (16x Volta over NVSwitch).

Reproduces the paper's headline claim: scaling every application from 1
to 16 GPUs, PROACT achieves an ~11x geometric-mean speedup — several
times better than bulk cudaMemcpy duplication, whose scaling flattens —
while staying within ~77-85 % of the infinite-bandwidth limit.

Run:  python examples/strong_scaling_dgx2.py
"""

from repro.experiments.report import TextTable, geometric_mean
from repro.hw import PLATFORM_16X_VOLTA
from repro.paradigms import (
    BulkMemcpyParadigm,
    InfiniteBandwidthParadigm,
    ProactDecoupledParadigm,
    ProactInlineParadigm,
)
from repro.workloads import default_workloads

GPU_COUNTS = (1, 2, 4, 8, 16)


def main() -> None:
    workloads = default_workloads()
    references = {
        workload.name: InfiniteBandwidthParadigm().execute(
            workload, PLATFORM_16X_VOLTA.with_num_gpus(1)).runtime
        for workload in workloads}

    table = TextTable(
        title="Strong scaling on 16x Volta / NVSwitch (geomean speedup)",
        columns=["gpus", "cudaMemcpy", "PROACT", "Infinite BW",
                 "PROACT vs memcpy", "% of limit"])
    for count in GPU_COUNTS:
        platform = PLATFORM_16X_VOLTA.with_num_gpus(count)
        memcpy, proact, ideal = [], [], []
        for workload in workloads:
            reference = references[workload.name]
            memcpy.append(reference / BulkMemcpyParadigm().execute(
                workload, platform).runtime)
            if count == 1:
                best = InfiniteBandwidthParadigm().execute(
                    workload, platform).runtime
            else:
                best = min(
                    ProactDecoupledParadigm().execute(
                        workload, platform).runtime,
                    ProactInlineParadigm().execute(
                        workload, platform).runtime)
            proact.append(reference / best)
            ideal.append(reference / InfiniteBandwidthParadigm().execute(
                workload, platform).runtime)
        geo_memcpy = geometric_mean(memcpy)
        geo_proact = geometric_mean(proact)
        geo_ideal = geometric_mean(ideal)
        table.add_row(count, geo_memcpy, geo_proact, geo_ideal,
                      f"{geo_proact / geo_memcpy:.2f}x",
                      f"{geo_proact / geo_ideal:.0%}")
        print(f"... {count} GPU(s) done")
    print()
    print(table)


if __name__ == "__main__":
    main()
