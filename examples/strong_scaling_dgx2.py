#!/usr/bin/env python
"""Strong scaling on the simulated DGX-2 (16x Volta over NVSwitch).

Reproduces the paper's headline claim: scaling every application from 1
to 16 GPUs, PROACT achieves an ~11x geometric-mean speedup — several
times better than bulk cudaMemcpy duplication, whose scaling flattens —
while staying within ~77-85 % of the infinite-bandwidth limit.

Run:  python examples/strong_scaling_dgx2.py
"""

from repro import Session
from repro.experiments.report import TextTable, geometric_mean
from repro.workloads import default_workloads

GPU_COUNTS = (1, 2, 4, 8, 16)


def main() -> None:
    workloads = default_workloads()
    single = Session("16x_volta", num_gpus=1)
    references = {
        workload.name: single.run(workload, "infinite").runtime
        for workload in workloads}

    table = TextTable(
        title="Strong scaling on 16x Volta / NVSwitch (geomean speedup)",
        columns=["gpus", "cudaMemcpy", "PROACT", "Infinite BW",
                 "PROACT vs memcpy", "% of limit"])
    for count in GPU_COUNTS:
        session = Session("16x_volta", num_gpus=count)
        memcpy, proact, ideal = [], [], []
        for workload in workloads:
            reference = references[workload.name]
            memcpy.append(
                reference / session.run(workload, "bulk").runtime)
            if count == 1:
                best = session.run(workload, "infinite").runtime
            else:
                best = min(
                    session.run(workload, "decoupled").runtime,
                    session.run(workload, "inline").runtime)
            proact.append(reference / best)
            ideal.append(
                reference / session.run(workload, "infinite").runtime)
        geo_memcpy = geometric_mean(memcpy)
        geo_proact = geometric_mean(proact)
        geo_ideal = geometric_mean(ideal)
        table.add_row(count, geo_memcpy, geo_proact, geo_ideal,
                      f"{geo_proact / geo_memcpy:.2f}x",
                      f"{geo_proact / geo_ideal:.0%}")
        print(f"... {count} GPU(s) done")
    print()
    print(table)


if __name__ == "__main__":
    main()
