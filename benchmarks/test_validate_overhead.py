"""Benchmark: runtime overhead of the simulation sanitizers.

Records the validation datapoint of the bench trajectory
(``benchmarks/results/BENCH_validate.json``): wall time of a fixed
multi-phase decoupled workload with the readiness sanitizer plus
conservation checker off vs on.  The sanitizer is pure bookkeeping per
already-emitted event, so the overhead budget is well under 2x — CI
fails this benchmark if validation ever becomes too expensive to leave
on in the smoke suite.
"""

import json
import time

from repro.core import MECH_POLLING, ProactConfig, ProactPhaseExecutor
from repro.hw import PLATFORM_4X_VOLTA
from repro.runtime import KernelSpec, System
from repro.core.runtime import GpuPhaseWork
from repro.units import KiB, MiB
from repro.validate import validation

NUM_PHASES = 6
REGION_BYTES = 16 * MiB
CHUNK = 128 * KiB  # 128 chunks/phase: enough hook traffic to measure
REPEATS = 3


def _run_workload():
    system = System(PLATFORM_4X_VOLTA)
    executor = ProactPhaseExecutor(
        system, ProactConfig(MECH_POLLING, CHUNK, 2048))
    flops = system.gpus[0].spec.flops * 2e-3
    for _ in range(NUM_PHASES):
        works = [GpuPhaseWork(
            kernel=KernelSpec("produce", flops, 0, 8192),
            region_bytes=REGION_BYTES)]
        works += [GpuPhaseWork(kernel=KernelSpec("other", flops, 0, 8192))
                  for _ in range(system.num_gpus - 1)]
        system.run(until=executor.execute(works))
    system.finish_validation()
    return system


def _best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_sanitizer_overhead_stays_bounded(results_dir):
    baseline_s = _best_of(REPEATS, _run_workload)

    def validated():
        with validation() as scope:
            system = _run_workload()
        summary = scope.summary()
        assert summary["violations"] == 0
        assert summary["phases_checked"] == NUM_PHASES
        assert system.checker.checks_run >= NUM_PHASES
        return summary

    validate_s = _best_of(REPEATS, validated)
    overhead = validate_s / baseline_s

    datapoint = {
        "benchmark": "validate_overhead",
        "phases": NUM_PHASES,
        "region_bytes": REGION_BYTES,
        "chunk_bytes": CHUNK,
        "baseline_s": round(baseline_s, 4),
        "validate_s": round(validate_s, 4),
        "overhead_ratio": round(overhead, 3),
    }
    path = results_dir / "BENCH_validate.json"
    path.write_text(json.dumps(datapoint, indent=2, sort_keys=True) + "\n")

    # The acceptance bar: sanitizer-on must stay under 2x sanitizer-off.
    assert overhead < 2.0, datapoint
