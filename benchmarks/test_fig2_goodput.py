"""Benchmark: regenerate Figure 2 (goodput vs. store granularity)."""

import pytest

from repro.experiments import fig2_goodput
from repro.interconnect import NVLINK_FORMAT, PCIE3_FORMAT, saturation_size


def test_fig2_goodput(benchmark, save_tables):
    result = benchmark.pedantic(fig2_goodput.run, rounds=1, iterations=1)
    save_tables("fig2_goodput", result.table())

    anchors = result.anchor_points()
    # Paper: 4-byte stores reach ~14 % goodput on PCIe, ~8 % on NVLink.
    assert anchors["PCIe"] == pytest.approx(0.14, abs=0.02)
    assert anchors["NVLink"] == pytest.approx(0.08, abs=0.02)
    # Paper: both interconnects become efficient at >= 128 bytes.
    assert saturation_size(PCIE3_FORMAT) == 128
    assert saturation_size(NVLINK_FORMAT) == 128
    # Curves are monotone non-decreasing across the sweep.
    for points in result.curves.values():
        fractions = [p.goodput_fraction for p in points]
        assert all(b >= a - 1e-9 for a, b in zip(fractions, fractions[1:]))
