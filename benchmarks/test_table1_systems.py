"""Benchmark: regenerate Table I (evaluated system characteristics)."""

from repro.experiments import table1_systems


def test_table1_systems(benchmark, save_tables):
    result = benchmark.pedantic(table1_systems.run, rounds=1, iterations=1)
    save_tables("table1_systems", result.table())

    names = [platform.name for platform in result.platforms]
    assert names == ["4x_kepler", "4x_pascal", "4x_volta", "16x_volta"]
    rendered = str(result.table())
    for fragment in ("Tesla K40m", "Tesla P100", "Tesla V100",
                     "PCIe3", "NVLink", "NVSwitch"):
        assert fragment in rendered
