"""Benchmark: regenerate Figure 9 (transfer/compute overlap fraction)."""

from repro.experiments import fig9_overlap


def test_fig9_overlap(benchmark, save_tables):
    result = benchmark.pedantic(fig9_overlap.run, rounds=1, iterations=1)
    save_tables("fig9_overlap", result.table())

    # Paper: PROACT always hides at least ~75 % of transfer time; we
    # allow a small margin for the simulated substrate.
    assert result.minimum() >= 0.6
    values = list(result.overlap.values())
    # In many cases nearly all communication is hidden.
    assert sum(1 for v in values if v >= 0.9) >= len(values) // 2
    assert max(values) > 0.95
