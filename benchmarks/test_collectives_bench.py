"""Benchmark: collective algorithms' bus bandwidth on the fabric.

Records the collectives datapoint of the bench trajectory
(``benchmarks/results/BENCH_collectives.json``): all-reduce bus
bandwidth per algorithm on a 4-GPU NVLink box and the 16-GPU NVSwitch
box, plus the two headline speedups (chunked ring over the direct bulk
exchange on the PCIe tree; tree over ring at small payloads at scale).
"""

import json
import time

from repro.collectives import run_collective, supported_algorithms
from repro.hw.platform import PLATFORMS
from repro.units import KiB, MiB

BENCH_PLATFORMS = ("4x_volta", "16x_volta")
BENCH_PAYLOAD = 16 * MiB
BENCH_CHUNK = 256 * KiB


def _sweep():
    busbw = {}
    for name in BENCH_PLATFORMS:
        platform = PLATFORMS[name]
        for algorithm in supported_algorithms("all_reduce",
                                              platform.num_gpus):
            result = run_collective(platform, "all_reduce", algorithm,
                                    BENCH_PAYLOAD, BENCH_CHUNK)
            busbw[f"{name}/{algorithm}"] = round(
                result.bus_bandwidth / 1e9, 3)
    return busbw


def test_collectives_smoke(benchmark, results_dir):
    started = time.perf_counter()
    busbw = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    sweep_s = time.perf_counter() - started

    kepler = PLATFORMS["4x_kepler"]
    ring = run_collective(kepler, "all_reduce", "ring", BENCH_PAYLOAD,
                          BENCH_CHUNK)
    bulk = run_collective(kepler, "all_reduce", "direct", BENCH_PAYLOAD,
                          chunk_size=BENCH_PAYLOAD)
    volta16 = PLATFORMS["16x_volta"]
    ring_small = run_collective(volta16, "all_reduce", "ring", 64 * KiB,
                                16 * KiB)
    tree_small = run_collective(volta16, "all_reduce", "tree", 64 * KiB,
                                16 * KiB)

    assert ring.duration < bulk.duration
    assert tree_small.duration < ring_small.duration
    assert all(value > 0 for value in busbw.values())

    datapoint = {
        "benchmark": "collectives",
        "payload_bytes": BENCH_PAYLOAD,
        "chunk_bytes": BENCH_CHUNK,
        "busbw_gbs": busbw,
        "ring_vs_direct_bulk_4x_kepler": round(
            bulk.duration / ring.duration, 3),
        "tree_vs_ring_small_16x_volta": round(
            ring_small.duration / tree_small.duration, 3),
        "sweep_s": round(sweep_s, 3),
    }
    path = results_dir / "BENCH_collectives.json"
    path.write_text(json.dumps(datapoint, indent=2, sort_keys=True) + "\n")
