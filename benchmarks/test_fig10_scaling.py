"""Benchmark: regenerate Figure 10 (strong scaling up to 16 GPUs)."""

from repro.experiments import fig10_scaling
from repro.hw import (
    PLATFORM_4X_KEPLER,
    PLATFORM_4X_PASCAL,
    PLATFORM_16X_VOLTA,
)

SWEEPS = (
    (PLATFORM_4X_KEPLER, (1, 2, 4)),
    (PLATFORM_4X_PASCAL, (1, 2, 4)),
    (PLATFORM_16X_VOLTA, (1, 2, 4, 8, 16)),
)


def test_fig10_scaling(benchmark, save_tables):
    result = benchmark.pedantic(
        fig10_scaling.run, kwargs={"sweeps": SWEEPS}, rounds=1, iterations=1)
    save_tables("fig10_scaling", *result.tables())

    # With only two GPUs, performance is insensitive to the transfer
    # method (paper Section V-D).
    for platform in ("4x_kepler", "4x_pascal", "16x_volta"):
        ratio = result.proact_advantage(platform, 2)
        assert 0.9 <= ratio <= 1.3

    # PROACT's advantage over cudaMemcpy grows with GPU count on the
    # 16-GPU system (paper: 1.2x / 2.2x / 5.3x at 4 / 8 / 16 GPUs).
    adv4 = result.proact_advantage("16x_volta", 4)
    adv8 = result.proact_advantage("16x_volta", 8)
    adv16 = result.proact_advantage("16x_volta", 16)
    assert adv4 < adv8 < adv16
    assert adv16 >= 3.0

    # cudaMemcpy scaling flattens/regresses while PROACT keeps scaling.
    memcpy16 = result.at("16x_volta", 16, "cudaMemcpy")
    memcpy8 = result.at("16x_volta", 8, "cudaMemcpy")
    assert memcpy16 <= memcpy8 * 1.05
    proact16 = result.at("16x_volta", 16, "PROACT")
    assert proact16 > 2 * result.at("16x_volta", 4, "PROACT")

    # Paper headline: ~11x at 16 GPUs, within 77 % of the limit.
    assert 9.0 <= proact16 <= 14.0
    assert result.capture("16x_volta", 16) >= 0.7

    # On PCIe-limited Kepler, transfer overheads bite earliest: the
    # memcpy curve is already far from linear at 4 GPUs.
    assert result.at("4x_kepler", 4, "cudaMemcpy") < 2.0
