"""Benchmarks: ablation studies of PROACT's design choices.

These extend the paper's evaluation, quantifying claims its design
discussion makes qualitatively (Sections II-B, III-D, V-C).
"""

from repro.experiments import ablations
from repro.hw import PLATFORM_4X_VOLTA
from repro.units import KiB, MiB


def test_ablation_hardware_proact(benchmark, save_tables):
    result = benchmark.pedantic(ablations.run_hardware_ablation,
                                rounds=1, iterations=1)
    save_tables("ablation_hardware", result.table())
    for platform in result.platforms:
        # Hardware PROACT dominates the software prototype and sits
        # within the theoretical limit.
        assert result.hardware[platform] >= result.software[platform]
        assert result.hardware[platform] <= result.infinite[platform] + 1e-9
    # On the NVLink platforms the remaining gap is mostly software
    # overhead, which hardware recovers (Section III-D's motivation).
    for platform in ("4x_pascal", "4x_volta"):
        assert result.gap_recovered(platform) >= 0.5
    # On PCIe-bound Kepler the gap is wire time, which no transfer agent
    # can remove: hardware recovers comparatively little there.
    assert (result.gap_recovered("4x_kepler")
            < result.gap_recovered("4x_volta"))


def test_ablation_dma_engines(benchmark, save_tables):
    result = benchmark.pedantic(
        ablations.run_dma_engine_ablation,
        kwargs={"platform": PLATFORM_4X_VOLTA, "engine_counts": (1, 2, 4)},
        rounds=1, iterations=1)
    save_tables("ablation_dma_engines", result.table())
    # More engines help bulk copies overlap each other...
    assert result.memcpy[2] > result.memcpy[1]
    assert result.memcpy[4] >= result.memcpy[2]
    # ...but cannot overlap copies with compute: PROACT still wins.
    assert result.proact > result.memcpy[4]


def test_ablation_peer_mapping(benchmark, save_tables):
    result = benchmark.pedantic(
        ablations.run_mapping_ablation,
        kwargs={"gpu_counts": (4, 8, 16)},
        rounds=1, iterations=1)
    save_tables("ablation_peer_mapping", result.table())
    # At 4 GPUs the mappings coincide (every peer needs everything).
    assert result.with_mapping[4] == result.full_duplication[4]
    # At scale, consumer-aware per-peer mappings are what keep PROACT's
    # scaling near-linear; naive full duplication falls away.
    assert result.with_mapping[16] > 1.3 * result.full_duplication[16]


def test_ablation_chunk_granularity(benchmark, save_tables):
    result = benchmark.pedantic(
        ablations.run_granularity_ablation,
        kwargs={"platform": PLATFORM_4X_VOLTA},
        rounds=1, iterations=1)
    save_tables("ablation_chunk_granularity", result.table())
    runtimes = [result.runtimes[size] for size in result.chunk_sizes]
    best = result.best_chunk()
    # The end-to-end curve is U-shaped: both extremes lose to the middle.
    assert 16 * KiB <= best <= 8 * MiB
    assert runtimes[0] > min(runtimes)   # dispatch-bound at 4 kB
    assert runtimes[-1] > min(runtimes)  # tail-bound at 32 MB


def test_ablation_topology(benchmark, save_tables):
    result = benchmark.pedantic(ablations.run_topology_ablation,
                                rounds=1, iterations=1)
    save_tables("ablation_topology", result.table())
    from repro.experiments.report import geometric_mean
    switch = geometric_mean(list(result.switch.values()))
    cube = geometric_mean(list(result.cube.values()))
    # Same GPUs, same aggregate bandwidth: the crossbar's full-rate
    # point-to-point paths beat the cube mesh's split links.
    assert switch > cube
    # But PROACT still extracts real scaling from the cube mesh.
    assert cube > 3.0
