"""Shared fixtures for the benchmark harness.

Every benchmark writes the table(s) it regenerates into
``benchmarks/results/`` so the paper-vs-measured comparison in
EXPERIMENTS.md can be refreshed from the artifacts.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_tables(results_dir):
    """Write rendered tables to a named artifact file."""

    def _save(name: str, *tables) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text("\n\n".join(str(table) for table in tables) + "\n")

    return _save
