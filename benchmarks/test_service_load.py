"""Benchmark: the tuning service under concurrent zipfian load.

Measures what the service layer is *for*: a signature-keyed cache in
front of sweep-priced tuning.  A zipfian mix (the head signatures
dominate, a long tail trickles in) is replayed from concurrent client
threads against 1/2/4-shard services, recording throughput and the
per-tier latency split in ``benchmarks/results/BENCH_service.json``.

Two gates ride on the numbers, both enforced in-test:

* ``hit_speedup``: answering from the store must be >= 100x faster
  (p50) than the sweep that seeded it — the whole point of fronting
  the profiler with a cache.  Misses here are real ~50ms sweeps (a
  24-config exhaustive grid on the test-sized PageRank/Jacobi), so the
  ratio is measured against honest work, not a stub.
* coalescing: N identical concurrent queries must run exactly one
  sweep (``coalesce_sweeps == 1``), and a full zipfian replay may
  never sweep more than its distinct-signature count.
"""

import json
import time
from concurrent.futures import ThreadPoolExecutor

from repro.service import (
    CollectiveQuery,
    ProfileQuery,
    QueryMix,
    ThreadedTuningService,
)
from repro.units import KiB, MiB
from repro.workloads import JacobiWorkload, PageRankWorkload

#: 6 chunk sizes x 2 thread counts x 2 mechanisms = 24 configs — sized
#: so one miss costs tens of milliseconds (an honest sweep, cheap CI).
SWEEP_CHUNKS = (16 * KiB, 64 * KiB, 128 * KiB, 256 * KiB, 1 * MiB,
                4 * MiB)
SWEEP_THREADS = (1024, 4096)
SWEEP_MECHANISMS = ("polling", "cdp")

SHARD_COUNTS = (1, 2, 4)
QUERIES = 150
CLIENT_THREADS = 8
COALESCE_FANIN = 16
REQUIRED_HIT_SPEEDUP = 100.0


def _universe():
    pagerank = PageRankWorkload(num_vertices=2_000_000,
                                num_edges=60_000_000, iterations=2)
    jacobi = JacobiWorkload(num_unknowns=2_000_000, bandwidth=20,
                            iterations=2)
    queries = []
    for workload in (pagerank, jacobi):
        for threads in ((1024,), (4096,), SWEEP_THREADS):
            queries.append(ProfileQuery(
                "4x_volta", workload, strategy="exhaustive",
                chunk_sizes=SWEEP_CHUNKS, thread_counts=threads,
                mechanisms=SWEEP_MECHANISMS))
    for nbytes in (1 * MiB, 64 * MiB):
        queries.append(CollectiveQuery(
            "4x_volta", "all_reduce", nbytes,
            chunk_sizes=(128 * KiB, 1 * MiB, 4 * MiB)))
    return queries


def _replay(service, mix):
    queries = list(mix)
    started = time.perf_counter()
    with ThreadPoolExecutor(CLIENT_THREADS) as pool:
        for result in pool.map(service.query, queries):
            assert result.plan is not None
    return time.perf_counter() - started


def test_service_load_latency_and_coalescing(results_dir):
    universe = _universe()
    datapoint = {
        "benchmark": "service",
        "universe": len(universe),
        "queries": QUERIES,
        "client_threads": CLIENT_THREADS,
        "miss_sweep_configs": len(SWEEP_CHUNKS) * len(SWEEP_THREADS)
        * len(SWEEP_MECHANISMS),
        "required_hit_speedup": REQUIRED_HIT_SPEEDUP,
    }

    best_qps = 0.0
    hit_speedup = None
    for shards in SHARD_COUNTS:
        mix = QueryMix.zipfian(universe, QUERIES, seed=20 + shards)
        with ThreadedTuningService(shards=shards) as service:
            elapsed = _replay(service, mix)
            stats = service.stats()
        sweeps = int(stats["sweeps"])
        # Coalescing gate: never more sweeps than distinct signatures.
        assert sweeps <= mix.unique_queries, (
            f"{sweeps} sweeps for {mix.unique_queries} distinct "
            f"signatures at {shards} shard(s)")
        qps = len(mix) / elapsed
        best_qps = max(best_qps, qps)
        hit = stats["latency_s"]["hit"]
        miss = stats["latency_s"]["miss"]
        datapoint[f"qps_{shards}shard"] = round(qps, 1)
        datapoint[f"hit_rate_{shards}shard"] = round(stats["hit_rate"], 3)
        datapoint[f"sweeps_{shards}shard"] = sweeps
        datapoint[f"hit_p50_us_{shards}shard"] = round(hit["p50"] * 1e6, 1)
        datapoint[f"hit_p99_us_{shards}shard"] = round(hit["p99"] * 1e6, 1)
        datapoint[f"miss_p50_ms_{shards}shard"] = round(miss["p50"] * 1e3, 2)
        if shards == 1:
            hit_speedup = miss["p50"] / hit["p50"]
            datapoint["hit_rate"] = round(stats["hit_rate"], 3)

    # Coalescing fan-in on a cold service: N identical concurrent
    # queries, exactly one sweep.
    probe = universe[0]
    with ThreadedTuningService(shards=2) as service:
        with ThreadPoolExecutor(COALESCE_FANIN) as pool:
            for result in pool.map(service.query,
                                   [probe] * COALESCE_FANIN):
                assert result.plan is not None
        coalesce_sweeps = int(service.stats()["sweeps"])

    datapoint["service_qps"] = round(best_qps, 1)
    datapoint["hit_speedup"] = round(hit_speedup, 1)
    datapoint["coalesce_requests"] = COALESCE_FANIN
    datapoint["coalesce_sweeps"] = coalesce_sweeps

    path = results_dir / "BENCH_service.json"
    path.write_text(json.dumps(datapoint, indent=2, sort_keys=True) + "\n")

    assert coalesce_sweeps == 1, (
        f"{COALESCE_FANIN} identical concurrent queries ran "
        f"{coalesce_sweeps} sweeps")
    assert hit_speedup >= REQUIRED_HIT_SPEEDUP, (
        f"store hit only {hit_speedup:.0f}x faster than a sweep "
        f"(needed {REQUIRED_HIT_SPEEDUP:.0f}x)")
