"""Benchmark: regenerate Figure 6 (microbenchmark speedup vs granularity)."""

from repro.core import MECH_CDP, MECH_POLLING
from repro.experiments import fig6_micro
from repro.units import KiB, MiB

GRANULARITIES = (4 * KiB, 16 * KiB, 256 * KiB, 1 * MiB, 16 * MiB, 64 * MiB)


def test_fig6_micro(benchmark, save_tables):
    result = benchmark.pedantic(
        fig6_micro.run,
        kwargs={"granularities": GRANULARITIES, "data_bytes": 64 * MiB},
        rounds=1, iterations=1)
    save_tables("fig6_micro", *result.tables())

    for platform in result.platforms:
        cdp = result.regions(platform, MECH_CDP)
        # The three regions of the paper's Figure 6: initiation-bound at
        # tiny chunks, a bandwidth-bound peak, and tail-bound decline.
        assert cdp["initiation"] < cdp["peak"]
        assert cdp["tail"] < cdp["peak"]
        # In the bandwidth-bound region, proactive transfers beat
        # cudaMemcpy by up to ~2x (ideal overlap bound).
        assert 1.3 < cdp["peak"] < 2.0

    # Kepler: polling substantially underperforms both cudaMemcpy and
    # CDP due to wasted poll-loop resources (Section V-A).
    kepler_poll = result.regions("4x_kepler", MECH_POLLING)
    assert kepler_poll["peak"] < 1.0
    assert kepler_poll["peak"] < result.peak("4x_kepler", MECH_CDP)

    # Pascal and Volta: polling is competitive at (nearly) all
    # granularities, with a peak comparable to or above CDP's.
    for platform in ("4x_pascal", "4x_volta"):
        assert result.peak(platform, MECH_POLLING) > 1.4
        # CDP is initiation-bound at 4 kB chunks on these parts.
        assert result.speedups[(platform, MECH_CDP, 4 * KiB)] < 1.0

    # Volta has the worst CDP initiation cost of the three platforms.
    assert (result.speedups[("4x_volta", MECH_CDP, 16 * KiB)]
            < result.speedups[("4x_pascal", MECH_CDP, 16 * KiB)]
            < result.speedups[("4x_kepler", MECH_CDP, 16 * KiB)])
