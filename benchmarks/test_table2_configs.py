"""Benchmark: regenerate Table II (profiler-chosen configurations)."""

from repro.experiments import table2_configs
from repro.units import KiB, MiB

#: A small-but-representative grid keeps the profiling benchmark fast
#: while spanning the decisive regions of the paper's studied ranges —
#: a fine chunk (favouring polling's cheap per-chunk dispatch), a medium
#: one, and a large one (favouring CDP's amortized launches).
BENCH_CHUNKS = (16 * KiB, 128 * KiB, 1 * MiB)
BENCH_THREADS = (1024, 4096)


def test_table2_configs(benchmark, save_tables):
    result = benchmark.pedantic(
        table2_configs.run,
        kwargs={"chunk_sizes": BENCH_CHUNKS,
                "thread_counts": BENCH_THREADS},
        rounds=1, iterations=1)
    save_tables("table2_configs", result.table())

    # Dense-write applications profile to inline on the NVLink parts
    # (paper Table II: X-ray CT and Jacobi pick 'I' on Pascal/Volta...).
    for platform in ("4x_pascal", "4x_volta"):
        assert result.mechanism(platform, "X-ray CT") == "I"
    # Jacobi picks inline on Kepler and Pascal (paper Table II).
    for platform in ("4x_kepler", "4x_pascal"):
        assert result.mechanism(platform, "Jacobi") == "I"

    # Sporadic-write applications always profile to decoupled transfers.
    for platform in ("4x_kepler", "4x_pascal", "4x_volta"):
        for app in ("Pagerank", "SSSP", "ALS"):
            assert result.mechanism(platform, app) in ("Poll", "CDP")

    # Kepler's profiler always chooses CDP (polling wastes its scarce
    # SMs).  On Volta, polling wins for most apps (CDP launch latency is
    # prohibitive there) — individual apps can sit on the margin, as the
    # paper's own per-platform flips show.
    volta_polls = 0
    for app in ("Pagerank", "SSSP", "ALS"):
        assert result.mechanism("4x_kepler", app) == "CDP"
        if result.mechanism("4x_volta", app) == "Poll":
            volta_polls += 1
    assert volta_polls >= 2
