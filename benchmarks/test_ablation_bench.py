"""Benchmark: the mechanism-ablation harness end to end.

Runs the full baseline + single-flip run set across the paper's five
applications on 4x Volta, persisting the ranked importance table and a
``BENCH_ablation.json`` summary for the perf trajectory
(``python -m repro.obs.bench_trend``).

Two gates ride on the numbers, both enforced in-test:

* the all-switches-on run must be *byte-identical* to the unablated
  paradigm — threading the default :class:`~repro.core.config.Mechanisms`
  through a simulation may not change a single float;
* Table II consistency: the decoupled agent and its write coalescing
  rank as the top two components with positive importance, matching
  the paper's mechanism-selection story.
"""

import json
import time

from repro.ablation import generate_runset, run_ablation
from repro.core.config import Mechanisms
from repro.experiments.fig7_endtoend import decoupled_config_for
from repro.hw.platform import PLATFORM_4X_VOLTA
from repro.paradigms import ProactDecoupledParadigm
from repro.workloads import PageRankWorkload, default_workloads

PLATFORM = PLATFORM_4X_VOLTA


def test_ablation_harness(results_dir, save_tables):
    workloads = default_workloads()
    runs = generate_runset()

    started = time.perf_counter()
    report = run_ablation(PLATFORM, workloads=workloads, runs=runs)
    elapsed = time.perf_counter() - started

    # Byte-identity gate on the registry experiment's own check.
    workload = PageRankWorkload()
    config = decoupled_config_for(PLATFORM)
    unablated = ProactDecoupledParadigm(config).execute(
        workload, PLATFORM).runtime
    all_on = ProactDecoupledParadigm(
        config, mechanisms=Mechanisms()).execute(workload, PLATFORM).runtime
    identical = unablated == all_on

    datapoint = {
        "benchmark": "ablation",
        "platform": PLATFORM.name,
        "workloads": len(workloads),
        "ablation_runs": len(runs),
        "ablation_s": round(elapsed, 2),
        "all_on_identical": identical,
        "decoupled_agent_rank": report.rank_of("decoupled_agent"),
        "write_coalescing_rank": report.rank_of("write_coalescing"),
    }
    for entry in report.components:
        datapoint[f"{entry.component}_importance"] = round(
            entry.importance, 4)

    save_tables("ablation", report.table())
    path = results_dir / "BENCH_ablation.json"
    path.write_text(json.dumps(datapoint, indent=2, sort_keys=True) + "\n")

    assert identical, (
        "all-switches-on diverged from the unablated paradigm: "
        f"{all_on} != {unablated}")
    assert report.rank_of("decoupled_agent") <= 2
    assert report.rank_of("write_coalescing") <= 2
    assert report.component("decoupled_agent").importance > 0
    assert report.component("write_coalescing").importance > 0
    # The modelled costs sit at the bottom with negative importance.
    assert report.component("fluid_contention").importance < 0
    assert report.component("packet_overhead").importance < 0
