"""Benchmark: regenerate Figure 7 (4-GPU speedups per app and paradigm)."""

from repro.experiments import fig7_endtoend
from repro.experiments.report import geometric_mean


def test_fig7_endtoend(benchmark, save_tables):
    result = benchmark.pedantic(fig7_endtoend.run, rounds=1, iterations=1)
    save_tables("fig7_endtoend", *result.tables())

    proact_means = []
    captures = []
    for platform in result.platforms:
        proact = result.proact_geomean(platform)
        memcpy = result.geomean(platform, "cudaMemcpy")
        infinite = result.geomean(platform, "Infinite BW")
        proact_means.append(proact)
        captures.append(result.opportunity_capture(platform))
        # PROACT beats bulk DMA duplication on every platform.
        assert proact > memcpy
        # Nothing beats the theoretical limit.
        assert proact <= infinite + 1e-9
        # UM is the weakest paradigm on average (paper Section V-B).
        assert result.geomean(platform, "UM") < proact

    # Headline: ~3.0x geomean across generations, ~83% of the 3.6x limit.
    overall = geometric_mean(proact_means)
    assert 2.6 <= overall <= 3.4
    assert sum(captures) / len(captures) >= 0.75

    # The infinite-BW opportunity averages ~3.6x (load imbalance).
    infinite_overall = geometric_mean(
        [result.geomean(p, "Infinite BW") for p in result.platforms])
    assert 3.4 <= infinite_overall <= 3.9

    # Per-app mechanism ordering on Volta (Table II's split): decoupled
    # wins the irregular apps, inline wins the dense-write apps.
    for app in ("Pagerank", "SSSP", "ALS"):
        assert (result.speedups[("4x_volta", app, "PROACT-decoupled")]
                > result.speedups[("4x_volta", app, "PROACT-inline")])
    for app in ("X-ray CT", "Jacobi"):
        assert (result.speedups[("4x_volta", app, "PROACT-inline")]
                > result.speedups[("4x_volta", app, "cudaMemcpy")])

    # Pagerank is the worst app for bulk duplication (paper: it can even
    # underperform a single GPU).
    for platform in result.platforms:
        pagerank = result.speedups[(platform, "Pagerank", "cudaMemcpy")]
        others = [result.speedups[(platform, app, "cudaMemcpy")]
                  for app in result.workloads if app != "Pagerank"]
        assert pagerank < min(others)

    # UM with hints can beat cudaMemcpy for Jacobi on fault-capable GPUs
    # (paper Section V-B), because it migrates only touched pages.
    for platform in ("4x_pascal", "4x_volta"):
        assert (result.speedups[(platform, "Jacobi", "UM")]
                > result.speedups[(platform, "Jacobi", "cudaMemcpy")])
