"""Benchmark: the PR 5 hot-path overhaul, gated on result identity.

Three numbers, written to ``benchmarks/results/BENCH_engine.json``:

* raw engine event throughput (a timeout-chained process mesh);
* the reference profiler sweep's wall time (exhaustive, unpruned) —
  the same sweep measured at the pre-PR commit, so the ratio is the
  speedup from the engine/interconnect/fluid fast paths alone;
* the same sweep with lower-bound pruning — the headline speedup the
  overhaul ships.

The speedup gate is only meaningful because the *results* are pinned:
the sweep must reproduce the pre-PR best configuration and its runtime
bit-for-bit, and the pruned sweep must match the unpruned one entry for
entry.  A fast simulator that simulates something else would fail here
first.

Pre-PR reference: commit 3808a03 ("Add simulation correctness layer"),
re-measured on an idle reference container when this job became
blocking.  Because an absolute wall-clock baseline only holds on the
machine that recorded it, the gate normalizes by a **machine canary**:
``BASELINE_EVENTS_PER_SEC`` is the bare-engine throughput of the
*current* code on that same reference container, so the ratio of the
canary re-measured here to the pinned value is purely the host's speed
(identical code on both sides) and rescales the baseline to this host.
"""

import json
import time

from repro.core.profiler import Profiler
from repro.hw import platform_by_name
from repro.sim.engine import Engine
from repro.workloads import PageRankWorkload

#: Measured at the pre-PR commit with this exact file's sweep spec.
BASELINE_SWEEP_S = 15.81
#: Machine canary: current-code engine throughput on the reference
#: container (same code as this checkout, so cross-host ratios are pure
#: machine speed).
BASELINE_EVENTS_PER_SEC = 580_000
#: The pre-PR sweep's answer; simulated results must not move.
BASELINE_BEST_LABEL = "D 64kB 2048 Poll"
BASELINE_BEST_RUNTIME = 0.01023327967536232

SWEEP_CHUNKS = (65536, 262144, 1048576, 4194304)
SWEEP_THREADS = (512, 2048)

#: Acceptance floor: profiler sweep at least this much faster end-to-end.
REQUIRED_SPEEDUP = 1.5


def _spin(engine, n):
    for _ in range(n):
        yield engine.timeout(1e-6)


def events_per_sec() -> float:
    """Throughput of the bare engine on a 50 x 2000 timeout mesh."""
    engine = Engine()
    for _ in range(50):
        engine.process(_spin(engine, 2000))
    t0 = time.perf_counter()
    engine.run()
    return engine.events_fired / (time.perf_counter() - t0)


def _sweep(prune: bool):
    profiler = Profiler(platform_by_name("4x_volta"),
                        chunk_sizes=SWEEP_CHUNKS,
                        thread_counts=SWEEP_THREADS,
                        search="exhaustive", prune=prune)
    builder = PageRankWorkload().phase_builder()
    t0 = time.perf_counter()
    result = profiler.profile(builder)
    return result, time.perf_counter() - t0


def test_engine_perf_overhaul(benchmark, results_dir):
    result, unpruned_s = _sweep(prune=False)

    # Byte-identity first: the optimized hot paths must reproduce the
    # pre-PR sweep exactly — same winner, bitwise-equal runtime, full
    # grid measured.
    assert result.best_config.label() == BASELINE_BEST_LABEL
    assert result.best.runtime == BASELINE_BEST_RUNTIME
    assert len(result.entries) == 1 + 2 * len(SWEEP_CHUNKS) * len(SWEEP_THREADS)

    pruned, pruned_s = benchmark.pedantic(
        _sweep, kwargs={"prune": True}, rounds=1, iterations=1)
    assert pruned.best.config == result.best.config
    assert pruned.best.runtime == result.best.runtime
    measured = {entry.config: entry.runtime for entry in result.entries}
    for entry in pruned.entries:
        assert measured[entry.config] == entry.runtime
    assert len(pruned.entries) + pruned.pruned_configs == len(result.entries)

    eps = events_per_sec()
    # Rescale the pinned baseline to this host: the canary ran the same
    # engine code on the reference container, so the ratio is machine
    # speed, not a property of the change under test.
    machine_factor = eps / BASELINE_EVENTS_PER_SEC
    effective_baseline_s = BASELINE_SWEEP_S * machine_factor
    engine_speedup = effective_baseline_s / unpruned_s
    total_speedup = effective_baseline_s / pruned_s

    datapoint = {
        "benchmark": "engine_perf",
        "baseline_commit": "3808a03",
        "baseline_sweep_s": BASELINE_SWEEP_S,
        "machine_factor": round(machine_factor, 3),
        "effective_baseline_s": round(effective_baseline_s, 3),
        "baseline_events_per_sec": BASELINE_EVENTS_PER_SEC,
        "events_per_sec": round(eps),
        "events_per_sec_speedup": round(eps / BASELINE_EVENTS_PER_SEC, 3),
        "sweep_s": round(unpruned_s, 3),
        "sweep_pruned_s": round(pruned_s, 3),
        "engine_speedup": round(engine_speedup, 3),
        "total_speedup": round(total_speedup, 3),
        "pruned_configs": pruned.pruned_configs,
        "floor_runs": pruned.floor_runs,
        "best": result.best_config.label(),
        "best_runtime": result.best.runtime,
        "identical_results": True,
    }
    path = results_dir / "BENCH_engine.json"
    path.write_text(json.dumps(datapoint, indent=2, sort_keys=True) + "\n")

    # The engine fast paths alone must never regress the sweep, and the
    # full overhaul (fast paths + pruning) must clear the acceptance bar.
    assert engine_speedup > 1.0, (
        f"unpruned sweep regressed: {unpruned_s:.2f}s vs "
        f"baseline {BASELINE_SWEEP_S:.2f}s")
    assert total_speedup >= REQUIRED_SPEEDUP, (
        f"overhauled sweep only {total_speedup:.2f}x faster than the "
        f"pre-PR baseline (needed {REQUIRED_SPEEDUP}x)")
