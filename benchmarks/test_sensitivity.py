"""Benchmark: sensitivity of the conclusions to the calibration."""

from repro.experiments import sensitivity


def test_sensitivity_conclusions_robust(benchmark, save_tables):
    result = benchmark.pedantic(sensitivity.run, rounds=1, iterations=1)
    save_tables("sensitivity", result.table())
    broken = [row.name for row in result.rows if not row.conclusions_hold]
    assert not broken, f"conclusions broke under: {broken}"
    baseline = result.rows[0]
    assert baseline.name == "baseline"
    # The headline gap is wide: PROACT leads memcpy by >20 % at baseline.
    assert baseline.proact > 1.2 * baseline.memcpy
