"""Benchmark: regenerate Figure 8 (tracking-instrumentation slowdown)."""

from repro.experiments import fig8_overhead


def test_fig8_overhead(benchmark, save_tables):
    result = benchmark.pedantic(fig8_overhead.run, rounds=1, iterations=1)
    save_tables("fig8_overhead", result.table())

    # Paper: overhead averages 10-15 % depending on platform.
    for platform in result.platforms:
        assert 0.02 <= result.mean(platform) <= 0.25
    # Paper: variation is significant — negligible up to ~40 %, with
    # Pagerank the worst case.
    _platform, workload, worst = result.max_overhead()
    assert workload == "Pagerank"
    assert 0.2 <= worst <= 0.55
    dense_apps = ("X-ray CT", "Jacobi")
    for platform in result.platforms:
        for app in dense_apps:
            # Long-CTA dense kernels pay little for tracking.
            assert result.overhead[(platform, app)] < 0.12
