"""Benchmark: cluster all-reduce scaling to 1024 simulated GPUs.

Records the cluster datapoint of the bench trajectory
(``benchmarks/results/BENCH_cluster.json``): engine event throughput
and all-reduce bus bandwidth for the flat ring vs. the hierarchical
schedule at 64, 256, and 1024 GPUs (4/16/64 DGX-2 nodes over a fat
tree), and runs the full differential oracle — schedule verifier,
readiness sanitizer, conservation checker, closed-form byte
expectations — on the 1024-GPU hierarchical all-reduce.
"""

import json
import time

from repro.cluster import cluster_platform, hierarchical_sent_bytes
from repro.collectives.algorithms import build_schedule
from repro.collectives.executor import CollectiveExecutor
from repro.runtime.system import System
from repro.units import MiB
from repro.validate.oracle import DifferentialOracle

NODE_COUNTS = (4, 16, 64)  # 64 / 256 / 1024 GPUs
BENCH_PAYLOAD = 16 * MiB
BENCH_CHUNK = 1 * MiB


def _run(platform, algorithm):
    """One collective on a fresh system; returns (result, events/sec)."""
    system = System(platform)
    schedule = build_schedule(
        "all_reduce", algorithm, system.num_gpus, BENCH_PAYLOAD,
        BENCH_CHUNK, gpus_per_node=platform.gpus_per_node)
    proc = CollectiveExecutor(system).launch(schedule)
    started = time.perf_counter()
    system.run(until=proc)
    wall = time.perf_counter() - started
    events_per_sec = system.engine.events_fired / wall if wall > 0 else 0.0
    return proc.value, events_per_sec, wall


def test_cluster_scale(results_dir):
    sizes = {}
    for num_nodes in NODE_COUNTS:
        platform = cluster_platform(num_nodes)
        num_gpus = platform.num_gpus
        ring, ring_eps, ring_wall = _run(platform, "ring")
        hier, hier_eps, hier_wall = _run(platform, "hierarchical")

        # The headline claim: the hierarchical schedule beats the flat
        # ring across nodes at every measured size.
        assert hier.bus_bandwidth > ring.bus_bandwidth, (
            f"hierarchical must beat flat ring at {num_gpus} GPUs")
        # And it sources exactly the closed-form byte count per GPU.
        want = hierarchical_sent_bytes(BENCH_PAYLOAD, num_gpus,
                                       platform.gpus_per_node)
        assert all(sent == want for sent in hier.sent_bytes)

        sizes[str(num_gpus)] = {
            "ring_busbw_gbs": round(ring.bus_bandwidth / 1e9, 3),
            "hier_busbw_gbs": round(hier.bus_bandwidth / 1e9, 3),
            "hier_vs_ring": round(
                hier.bus_bandwidth / ring.bus_bandwidth, 3),
            "ring_events_per_sec": round(ring_eps),
            "hier_events_per_sec": round(hier_eps),
            "ring_wall_s": round(ring_wall, 3),
            "hier_wall_s": round(hier_wall, 3),
        }

    # Full validation stack on the largest run: verifier + sanitizer +
    # conservation + differential byte oracle at 1024 GPUs.
    started = time.perf_counter()
    oracle = DifferentialOracle()
    result = oracle.check_collective(
        cluster_platform(NODE_COUNTS[-1]), "all_reduce", "hierarchical",
        BENCH_PAYLOAD, chunk_size=BENCH_CHUNK)
    oracle_wall = time.perf_counter() - started
    assert result.num_gpus == NODE_COUNTS[-1] * 16

    largest = sizes[str(NODE_COUNTS[-1] * 16)]
    datapoint = {
        "benchmark": "cluster",
        "payload_bytes": BENCH_PAYLOAD,
        "chunk_bytes": BENCH_CHUNK,
        "sizes": sizes,
        "hier_vs_ring_1024gpu": largest["hier_vs_ring"],
        "hier_busbw_1024gpu_gbs": largest["hier_busbw_gbs"],
        "events_per_sec": largest["hier_events_per_sec"],
        "oracle_1024_s": round(oracle_wall, 3),
    }
    path = results_dir / "BENCH_cluster.json"
    path.write_text(json.dumps(datapoint, indent=2, sort_keys=True) + "\n")
