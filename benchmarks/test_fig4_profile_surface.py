"""Benchmark: regenerate Figure 4 (profiling surface on Kepler)."""

from repro.experiments import fig4_profile
from repro.units import KiB, MiB


def test_fig4_profile_surface(benchmark, save_tables):
    threads = (32, 128, 512, 2048)
    sizes = (16 * KiB, 256 * KiB, 4 * MiB, 64 * MiB)
    result = benchmark.pedantic(
        fig4_profile.run,
        kwargs={"threads": threads, "sizes": sizes,
                "data_bytes": 32 * MiB},
        rounds=1, iterations=1)
    save_tables("fig4_profile_surface", result.table())

    best_threads, best_size = result.best_cell()
    # Paper: >= 128 threads are needed to saturate the interconnect, and
    # the best granularities sit in the middle of the range.
    assert best_threads >= 128
    assert 16 * KiB <= best_size <= 4 * MiB
    # Starving the agent (32 threads) must hurt at every granularity.
    for size in sizes:
        assert (result.throughput[(32, size)]
                < result.throughput[(best_threads, size)])
    # Beyond saturation, adding threads stops helping (within 10 %).
    assert (result.throughput[(2048, best_size)]
            <= result.throughput[(512, best_size)] * 1.10)
