"""Benchmark: regenerate Figure 1 (communication-paradigm comparison)."""

from repro.experiments import fig1_paradigms
from repro.units import MiB


def test_fig1_paradigms(benchmark, save_tables):
    result = benchmark.pedantic(
        fig1_paradigms.run, kwargs={"data_bytes": 64 * MiB},
        rounds=1, iterations=1)
    save_tables("fig1_paradigms", result.table())

    memcpy = result.runtimes["cudaMemcpy"]
    loads = result.runtimes["P2P-loads"]
    inline = result.runtimes["PROACT-inline"]
    decoupled = result.runtimes["PROACT-decoupled"]

    # Figure 1's story: bulk DMA exposes the whole transfer; fine-grained
    # paradigms overlap it; PROACT overlaps it *and* keeps the wire
    # efficient, so it is the fastest.
    assert decoupled < memcpy
    assert loads < memcpy
    assert decoupled <= inline
    assert decoupled <= loads

    # Wire-efficiency ordering: bulk/decoupled are packed; remote loads
    # move 32 B sectors; sporadic inline stores are worst.
    assert result.efficiencies["cudaMemcpy"] > 0.85
    assert result.efficiencies["PROACT-decoupled"] > 0.85
    assert 0.3 < result.efficiencies["P2P-loads"] < 0.7
    assert result.efficiencies["PROACT-inline"] < 0.3
