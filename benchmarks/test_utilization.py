"""Benchmark: interconnect-utilization smoothing (Section III claim 3)."""

from repro.experiments import utilization
from repro.units import MiB
from repro.workloads import MicroBenchmark


def test_utilization_smoothing(benchmark, save_tables):
    result = benchmark.pedantic(
        utilization.run,
        kwargs={"workload": MicroBenchmark(data_bytes=64 * MiB),
                "buckets": 40},
        rounds=1, iterations=1)
    save_tables("utilization_smoothing", result.table())

    bulk = result.timelines["cudaMemcpy"]
    proact = result.timelines["PROACT-decoupled"]
    # Bulk synchrony confines transfers to the window after the kernel;
    # PROACT keeps the interconnect active across nearly the whole run.
    bulk_window = utilization.active_window_fraction(bulk)
    proact_window = utilization.active_window_fraction(proact)
    assert proact_window > 1.5 * bulk_window
    assert proact_window > 0.8
    # And it extracts more from the links it uses (same bytes, less
    # wall-clock, all destination links driven concurrently).
    assert (sum(proact) / len(proact)) > (sum(bulk) / len(bulk))
