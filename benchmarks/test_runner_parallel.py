"""Benchmark: warm-worker parallel profiler sweeps vs. serial.

The original datapoint on this trajectory measured the *experiment
runner* at ``--jobs 2`` and found the process pool slower than serial
(0.85x): every task re-pickled the whole platform and the pool was
respawned per wave.  The warm-worker protocol (ship the sweep context
once at pool init, stream batched config deltas) is supposed to fix
that, so this bench now measures the thing that actually fans out — a
full profiler sweep — at ``jobs=4`` on a grid more than ten times the
old bench's task count, and records the trajectory in
``benchmarks/results/BENCH_runner_parallel.json``.

Two gates ride on the numbers:

* correctness, always: the parallel sweep must reproduce the serial
  entries byte-for-byte (same configs, same runtimes, same order), and
  the search autotuner must land on the same argmin;
* speed, on real hardware: >= 3x at 4 jobs.  The speedup assertion is
  enforced in-test only when the host has >= 4 CPUs (the JSON records
  ``gate_enforced`` either way); the CI job additionally asserts the
  recorded speedup so the gate is blocking where it is meaningful.
"""

import json
import os
import time

from repro.core.profiler import ParallelProfiler, Profiler
from repro.hw import platform_by_name
from repro.obs import capture
from repro.units import KiB, MiB
from repro.workloads import PageRankWorkload

#: 7 chunk sizes x 8 thread counts x 2 decoupled mechanisms + inline
#: = 113 configurations — >10x the old 3-experiment bench and >10x the
#: engine bench's 17-point sweep.
SWEEP_CHUNKS = (16 * KiB, 64 * KiB, 128 * KiB, 256 * KiB,
                1 * MiB, 4 * MiB, 16 * MiB)
SWEEP_THREADS = (32, 128, 256, 512, 1024, 2048, 4096, 8192)
MIN_SWEEP_CONFIGS = 100

BENCH_JOBS = 4
REQUIRED_SPEEDUP = 3.0
#: Sweep telemetry (capture(sweeps=True)) may cost at most 5% wall clock.
MAX_TELEMETRY_OVERHEAD = 1.05


def _workload():
    """Test-sized PageRank: representative phases, ~tens of ms a run."""
    return PageRankWorkload(num_vertices=2_000_000, num_edges=60_000_000,
                            iterations=2)


def _profiler_kwargs():
    return dict(chunk_sizes=SWEEP_CHUNKS, thread_counts=SWEEP_THREADS,
                search="exhaustive")


def test_warm_worker_sweep_speedup(benchmark, results_dir):
    platform = platform_by_name("4x_volta")
    builder = _workload().phase_builder()

    started = time.perf_counter()
    serial = Profiler(platform, **_profiler_kwargs()).profile(builder)
    serial_s = time.perf_counter() - started
    assert len(serial.entries) >= MIN_SWEEP_CONFIGS

    parallel_profiler = ParallelProfiler(platform, jobs=BENCH_JOBS,
                                         **_profiler_kwargs())
    parallel = benchmark.pedantic(
        parallel_profiler.profile, args=(builder,), rounds=1, iterations=1)
    parallel_s = benchmark.stats.stats.total

    # Correctness gate: byte-identical entries, hence identical argmin.
    assert parallel.entries == serial.entries
    assert parallel.best == serial.best

    # The search autotuner on the same grid: same argmin, fewer runs.
    search_started = time.perf_counter()
    searched = ParallelProfiler(platform, chunk_sizes=SWEEP_CHUNKS,
                                thread_counts=SWEEP_THREADS,
                                search="search",
                                jobs=BENCH_JOBS).profile(builder)
    search_s = time.perf_counter() - search_started
    assert searched.best.config == serial.best.config
    assert searched.best.runtime == serial.best.runtime
    assert len(searched.entries) <= len(serial.entries)

    cpus = os.cpu_count() or 1
    gate_enforced = cpus >= BENCH_JOBS
    speedup = serial_s / parallel_s

    datapoint = {
        "benchmark": "runner_parallel",
        "sweep_configs": len(serial.entries),
        "jobs": BENCH_JOBS,
        "cpu_count": cpus,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(speedup, 3),
        "required_speedup": REQUIRED_SPEEDUP,
        "gate_enforced": gate_enforced,
        "identical_entries": True,
        "best": serial.best.config.label(),
        "best_runtime": serial.best.runtime,
        "search_s": round(search_s, 3),
        "search_measured": len(searched.entries),
        "search_floor_runs": searched.floor_runs,
        "search_argmin_identical": True,
    }
    path = results_dir / "BENCH_runner_parallel.json"
    path.write_text(json.dumps(datapoint, indent=2, sort_keys=True) + "\n")

    # Speed gate: only meaningful with enough cores to actually fan out
    # (the container this repo is often developed in has one CPU); CI
    # re-asserts the recorded speedup on its 4-vCPU runners.
    if gate_enforced:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"warm-worker sweep only {speedup:.2f}x faster than serial "
            f"at {BENCH_JOBS} jobs (needed {REQUIRED_SPEEDUP}x)")


def test_sweep_telemetry_coverage_and_overhead(results_dir):
    """Acceptance gate for ``capture(sweeps=True)`` on the full grid.

    The 113-config parallel sweep under sweep telemetry must produce a
    Perfetto document with one activity lane per worker and a decision
    log whose measure+prune counts exactly cover the grid — while the
    sweep's entries stay byte-identical to an untelemetered run and the
    wall-clock overhead stays within ``MAX_TELEMETRY_OVERHEAD`` (the
    overhead gate, like the speedup gate above, is enforced in-test
    only on hosts with enough cores to make the timing meaningful).
    """
    platform = platform_by_name("4x_volta")
    builder = _workload().phase_builder()

    def sweep():
        return ParallelProfiler(platform, jobs=BENCH_JOBS,
                                **_profiler_kwargs()).profile(builder)

    started = time.perf_counter()
    plain = sweep()
    off_s = time.perf_counter() - started
    grid = len(plain.entries)
    assert grid >= MIN_SWEEP_CONFIGS  # the 113-config grid

    started = time.perf_counter()
    with capture(sweeps=True) as observation:
        traced = sweep()
    on_s = time.perf_counter() - started

    # Telemetry must never perturb the sweep itself.
    assert traced.entries == plain.entries
    assert traced.best == plain.best

    # Decision log covers the grid exactly: every candidate ends in
    # exactly one measure or prune event, and the final incumbent is
    # the sweep's actual winner.
    decisions = observation.decisions
    measured = decisions.count("measure")
    pruned = decisions.count("prune")
    assert measured + pruned == grid
    assert measured == len(traced.entries)
    assert decisions.final_incumbent().config == traced.best.config.label()

    cpus = os.cpu_count() or 1
    gate_enforced = cpus >= BENCH_JOBS
    lanes = sorted({channel
                    for channel in observation.ambient_tracer.channels()
                    if channel.startswith("sweep.worker")})
    assert len(lanes) >= 1
    if gate_enforced:
        assert len(lanes) == BENCH_JOBS  # one lane per worker process

    # The exported Perfetto document carries the lanes and the
    # decision channel as their own tracks.
    document = observation.chrome_trace()
    tids = {event["tid"] for event in document["traceEvents"]}
    assert set(lanes) <= tids
    assert "decision" in tids

    overhead = on_s / off_s
    datapoint = {
        "benchmark": "sweep_telemetry",
        "sweep_configs": grid,
        "jobs": BENCH_JOBS,
        "cpu_count": cpus,
        "telemetry_off_s": round(off_s, 3),
        "telemetry_on_s": round(on_s, 3),
        "overhead": round(overhead, 3),
        "max_overhead": MAX_TELEMETRY_OVERHEAD,
        "gate_enforced": gate_enforced,
        "identical_entries": True,
        "worker_lanes": len(lanes),
        "decisions_measured": measured,
        "decisions_pruned": pruned,
        "decision_events": len(decisions),
    }
    path = results_dir / "BENCH_sweep_telemetry.json"
    path.write_text(json.dumps(datapoint, indent=2, sort_keys=True) + "\n")

    if gate_enforced:
        assert overhead <= MAX_TELEMETRY_OVERHEAD, (
            f"sweep telemetry costs {overhead:.3f}x wall clock "
            f"(allowed {MAX_TELEMETRY_OVERHEAD}x)")
