"""Benchmark: parallel experiment runner vs. serial, on a quick subset.

Records the first datapoint of the runner's bench trajectory
(``benchmarks/results/BENCH_runner_parallel.json``): serial and
parallel wall time for the same subset, the speedup, and proof that the
parallel run reproduced the serial tables byte-for-byte.
"""

import io
import json
import time

from repro.experiments import runner

#: A cheap-but-representative subset: a pure-lookup table, an analytic
#: curve, and one simulation-backed harness.
BENCH_SUBSET = ("table1", "fig1", "fig2")
BENCH_JOBS = 2


def _tables_text(results) -> str:
    return "\n\n".join("\n\n".join(result.tables) for result in results)


def test_runner_parallel_smoke(benchmark, results_dir):
    started = time.perf_counter()
    serial = runner.run_all(quick=True, out=io.StringIO(),
                            only=BENCH_SUBSET)
    serial_s = time.perf_counter() - started

    parallel = benchmark.pedantic(
        runner.run_all,
        kwargs={"quick": True, "out": io.StringIO(),
                "jobs": BENCH_JOBS, "only": BENCH_SUBSET},
        rounds=1, iterations=1)
    parallel_s = benchmark.stats.stats.total

    # The parallel run must reproduce the serial tables byte-for-byte.
    assert _tables_text(parallel) == _tables_text(serial)
    assert [r.name for r in parallel] == [r.name for r in serial]
    assert [r.scalars for r in parallel] == [r.scalars for r in serial]

    datapoint = {
        "benchmark": "runner_parallel",
        "subset": list(BENCH_SUBSET),
        "jobs": BENCH_JOBS,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3),
        "identical_output": True,
    }
    path = results_dir / "BENCH_runner_parallel.json"
    path.write_text(json.dumps(datapoint, indent=2, sort_keys=True) + "\n")
